"""Shared desktop-grid server machinery.

Both middleware models (BOINC, XtremWeb-HEP) share the same skeleton:

* a *pending queue* of execution units waiting for a worker;
* a *dispatch loop* that pairs pending units with idle available nodes
  from the :class:`~repro.infra.pool.NodePool`;
* per-task bookkeeping (:class:`TaskState`) feeding the observer
  protocol that the SpeQuloS Information module and the metric
  collectors subscribe to;
* the cloud-worker integration points used by the three deployment
  strategies of §3.5: *Flat* (cloud nodes join the ordinary pool),
  *Reschedule* (:meth:`DGServer.fetch_for_cloud` serves pending work
  first, then duplicates of running work) and *Cloud duplication*
  (:meth:`DGServer.external_complete` merges results computed on a
  separate cloud-side server).

Subclasses implement unit selection and the execution lifecycle —
that is exactly where the two middleware differ in how they survive
volatility.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import Deque, Dict, List, Optional, Protocol, Tuple

import numpy as np

from repro.infra.node import Node
from repro.infra.pool import NodePool
from repro.middleware.columns import TaskColumns
from repro.simulator.engine import Event, Simulation
from repro.workload.bot import BagOfTasks, Task

__all__ = ["DGServer", "ServerObserver", "ServerStats", "TaskState",
           "GTID", "DISPATCH_STATS", "reset_dispatch_stats"]

#: dispatch-plane telemetry (reset per profiled run by the benches):
#: total dispatch passes, bulk passes, scalar fallbacks forced by the
#: eligibility precondition, and wall seconds spent inside bulk pairing
DISPATCH_STATS = {"dispatches": 0, "bulk": 0, "scalar_fallbacks": 0,
                  "pairing_wall": 0.0}


def reset_dispatch_stats() -> None:
    DISPATCH_STATS["dispatches"] = 0
    DISPATCH_STATS["bulk"] = 0
    DISPATCH_STATS["scalar_fallbacks"] = 0
    DISPATCH_STATS["pairing_wall"] = 0.0

#: Global task id: (bot_id, task_id) — servers can host several BoTs.
GTID = Tuple[str, int]


class ServerObserver(Protocol):
    """Callbacks the server emits; all methods are optional no-ops."""

    def on_task_arrived(self, gtid: GTID, t: float) -> None: ...

    def on_task_first_assigned(self, gtid: GTID, t: float) -> None: ...

    def on_task_completed(self, gtid: GTID, t: float) -> None: ...

    def on_bot_completed(self, bot_id: str, t: float) -> None: ...


@dataclass
class ServerStats:
    """Aggregate event counters (tests and diagnostics)."""

    arrivals: int = 0
    assignments: int = 0
    completions: int = 0
    discarded_results: int = 0
    preemptions: int = 0
    timeouts: int = 0
    reissues: int = 0
    cloud_assignments: int = 0
    suspensions: int = 0
    resumes: int = 0


@dataclass(eq=False)
class TaskState:
    """Server-side state of one task (BOINC: workunit).

    Identity semantics (``eq=False``): two states are the same object
    or different tasks; sets of states are used for candidate scans.

    ``done`` flips exactly once; late or duplicate results arriving
    afterwards are discarded (counted in
    :attr:`ServerStats.discarded_results`).

    Columnar mirror: a server-admitted state carries ``cols``/``row``
    pointing into the server's :class:`~repro.middleware.columns.
    TaskColumns`, and the four mirrored fields (``done``,
    ``outstanding``, ``first_assign_time``, ``cloud_dups``) must only
    change through the mutator methods below, which write the object
    field and the column cell together (the sync invariant the bulk
    dispatch masks rely on).  A standalone state (``cols is None``)
    uses the same mutators; they just skip the column write.
    """

    gtid: GTID
    task: Task
    done: bool = False
    arrival_time: float = 0.0
    first_assign_time: Optional[float] = None
    completion_time: Optional[float] = None
    #: replicas/executions currently counted as live by the server
    outstanding: int = 0
    #: number of live cloud-side duplicates (Reschedule bookkeeping)
    cloud_dups: int = 0
    #: node ids that ever received this task (BOINC one-result-per-user)
    workers: set = field(default_factory=set)
    #: BOINC: validated results so far
    ok_results: int = 0
    #: whether the task currently sits in the pending queue (XWHEP)
    queued: bool = False
    #: columnar mirror handle (set at admission by the server)
    cols: Optional[TaskColumns] = None
    row: int = -1

    # -- mirrored-field mutators (the only legal write sites) ----------
    def mark_done(self) -> None:
        self.done = True
        if self.cols is not None:
            self.cols.done[self.row] = True

    def add_outstanding(self, delta: int) -> None:
        self.outstanding += delta
        if self.cols is not None:
            self.cols.outstanding[self.row] += delta

    def set_first_assign(self, t: float) -> None:
        self.first_assign_time = t
        if self.cols is not None:
            self.cols.first_assign[self.row] = t

    def add_cloud_dups(self, delta: int) -> None:
        self.cloud_dups += delta
        if self.cols is not None:
            self.cols.cloud_dups[self.row] += delta


class _BotProgress:
    """Per-BoT completion accounting and task index.

    ``uncompleted`` keeps the BoT's arrived-but-not-done gtids in
    arrival order (a dict used as an ordered set) and ``assigned``
    counts tasks assigned at least once — both are maintained
    incrementally so the monitor-tick queries
    (:meth:`DGServer.uncompleted_gtids`, :meth:`DGServer.
    assigned_count`) stop scanning every task the server ever hosted.
    """

    __slots__ = ("bot", "total", "arrived", "completed", "submit_time",
                 "uncompleted", "assigned")

    def __init__(self, bot: BagOfTasks, submit_time: float):
        self.bot = bot
        self.total = bot.size
        self.arrived = 0
        self.completed = 0
        self.submit_time = submit_time
        #: arrived, not-yet-done gtids in arrival order (ordered set)
        self.uncompleted: Dict[GTID, None] = {}
        #: tasks with a first_assign_time
        self.assigned = 0


class DGServer:
    """Abstract desktop-grid server (see module docstring).

    Parameters
    ----------
    sim, pool:
        The shared event engine and the BE-DCI node pool.
    name:
        Label used in diagnostics.
    """

    #: observer callbacks dispatched through pre-bound method lists
    OBSERVER_EVENTS = ("on_task_arrived", "on_task_first_assigned",
                       "on_task_completed", "on_bot_completed")

    def __init__(self, sim: Simulation, pool: NodePool, name: str = "dg"):
        self.sim = sim
        self.pool = pool
        self.name = name
        self.stats = ServerStats()
        self.tasks: Dict[GTID, TaskState] = {}
        #: columnar mirror of dispatch-relevant task fields (one row
        #: per admitted task, appended in _arrive_one)
        self.task_cols = TaskColumns()
        self.pending: Deque = deque()
        self.observers: List[ServerObserver] = []
        #: event name -> bound observer methods (built in add_observer,
        #: so _emit never pays a getattr per event per observer)
        self._obs_methods: Dict[str, List] = {
            name: [] for name in self.OBSERVER_EVENTS}
        self._bots: Dict[str, _BotProgress] = {}
        self._busy: Dict[int, GTID] = {}          # node_id -> gtid
        self._wakeup: Optional[Event] = None
        #: nodes flagged as cloud workers currently registered via Flat
        self._flat_cloud: Dict[int, Node] = {}
        #: node_id -> callback fired (async) when that node goes idle;
        #: used by dedicated cloud workers to fetch their next unit
        self._idle_callbacks: Dict[int, object] = {}
        #: exact busy-time accounting for cloud workers (billing is for
        #: CPU actually used, §3.3's "Cloud worker usage")
        self._cloud_busy_acc: Dict[int, float] = {}
        self._cloud_busy_since: Dict[int, float] = {}
        # A submitted BoT's simultaneous arrivals (the paper's SMALL/BIG
        # categories all arrive at t=0) drain as one engine batch call
        # instead of thousands of per-event dispatches.
        sim.register_batch(self._arrive, self._arrive_batch)

    # ------------------------------------------------------------------
    # load probes (federated routing, repro.core.routing)
    # ------------------------------------------------------------------
    def busy_count(self) -> int:
        """Workers currently executing an execution unit."""
        return len(self._busy)

    def backlog(self) -> int:
        """Execution units queued but not yet assigned to a worker."""
        return len(self.pending)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit_bot(self, bot: BagOfTasks, at: float = 0.0) -> None:
        """Submit a BoT; tasks arrive at ``at + task.arrival``."""
        if bot.bot_id in self._bots:
            raise ValueError(f"BoT {bot.bot_id!r} already submitted")
        self._bots[bot.bot_id] = _BotProgress(bot, at)
        for task in bot:
            self.sim.at(at + task.arrival, self._arrive, bot.bot_id, task)

    def _arrive(self, bot_id: str, task: Task) -> None:
        self._arrive_one(bot_id, task)
        self._dispatch()

    def _arrive_one(self, bot_id: str, task: Task) -> None:
        t = self.sim.now
        gtid = (bot_id, task.task_id)
        st = TaskState(gtid=gtid, task=task, arrival_time=t,
                       cols=self.task_cols, row=self.task_cols.add(gtid))
        self.tasks[gtid] = st
        prog = self._bots[bot_id]
        prog.arrived += 1
        prog.uncompleted[gtid] = None
        self.stats.arrivals += 1
        self._emit("on_task_arrived", gtid, t)
        self._enqueue_new(st)

    def _arrive_batch(self, argslist) -> None:
        """Batched form of :meth:`_arrive` (same instant, seq order).

        Replays the per-event body per args tuple — exact by
        construction.  Subclasses whose dispatch order provably cannot
        depend on interleaving (XWHEP's node-agnostic FIFO pick)
        override this with a single merged dispatch.
        """
        for bot_id, task in argslist:
            self._arrive_one(bot_id, task)
            self._dispatch()

    # ------------------------------------------------------------------
    # hooks for subclasses
    # ------------------------------------------------------------------
    def _enqueue_new(self, st: TaskState) -> None:
        """Queue the execution unit(s) for a newly arrived task."""
        raise NotImplementedError

    def _pick_unit(self, node: Node):
        """Pop the next pending unit this node may execute, or None."""
        raise NotImplementedError

    def _execute(self, unit, node: Node, interval_end: float) -> None:
        """Start the unit on the node (schedule its lifecycle events)."""
        raise NotImplementedError

    def fetch_for_cloud(self, node: Node):
        """Reschedule strategy: hand a unit to a dedicated cloud worker.

        Must serve pending units first, then duplicates of running
        work; returns None when nothing useful remains.  The returned
        unit is *already started* on ``node`` by this call.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # dispatch loop
    # ------------------------------------------------------------------

    #: below this queue length the bulk pass gains nothing over the
    #: scalar loop (both are transcript-identical; this is pure tuning)
    _BULK_MIN = 4

    def _dispatch(self) -> None:
        """Pair pending units with available idle nodes.

        Bulk fast path — provably the scalar loop, draw for draw.
        Simulate :meth:`_dispatch_scalar` over a queue whose first
        ``n_live`` non-done entries are each consumable by *any* drawn
        node (the :meth:`_bulk_eligible` precondition): every
        successful acquire strips the done heads in front of the next
        live entry and consumes that entry, so the loop performs
        exactly ``k = n_live`` acquires when the queue ends with a
        live entry, and ``n_live + 1`` when trailing done entries (or
        an all-done queue) force one extra acquire whose pick comes
        back None and whose node is set aside.  Acquires schedule no
        events and :meth:`_execute` consumes no RNG, so hoisting all
        draws in front of all executes (one :meth:`NodePool.
        acquire_many`) leaves both the RNG stream and the event-seq
        allocation order byte-identical.  If the pool runs dry after
        ``g < k`` draws, the scalar loop breaks with the queue cut
        after the ``g``-th consumed live entry (done heads in front of
        an un-consumed live entry survive — the strip that would have
        removed them never ran) and arms the wake-up; the bulk pass
        reproduces that exact remainder.  Queues the precondition
        cannot certify (BOINC with assignment history) take
        :meth:`_dispatch_scalar` unchanged.

        Routing: the bulk pre-pass scans the whole queue (O(n)), so
        it must be amortized by many assignments.  In steady state a
        task finish releases *one* node into a long queue — there the
        scalar loop is O(1) (acquire, pick, dry, stop) while the
        pre-pass would re-scan thousands of entries per event.  The
        pool's O(1) :meth:`~repro.infra.pool.NodePool.ready_hint`
        routes those to the scalar loop; arrival storms and wake-ups
        with many returning nodes stay bulk.  The hint is advisory
        only — both loops are transcript-identical, so routing can
        never change results.
        """
        DISPATCH_STATS["dispatches"] += 1
        pending = self.pending
        n = len(pending)
        if n == 0:
            return
        t = self.sim.now
        if (n < self._BULK_MIN
                or self.pool.ready_hint(t) < self._BULK_MIN):
            self._dispatch_scalar()
            return
        plist = list(pending)
        rows = np.fromiter((st.row for st in plist), dtype=np.int64,
                           count=n)
        if rows.min() < 0:  # foreign TaskState without a column row
            self._dispatch_scalar()
            return
        wall0 = perf_counter()
        live_idx = np.flatnonzero(~self.task_cols.done[rows])
        n_live = int(live_idx.shape[0])
        if n_live and not self._bulk_eligible(rows, live_idx):
            DISPATCH_STATS["scalar_fallbacks"] += 1
            self._dispatch_scalar()
            return
        DISPATCH_STATS["bulk"] += 1
        k = n_live
        if n_live == 0 or int(live_idx[-1]) != n - 1:
            k += 1  # trailing done entries cost one set-aside acquire
        got = self.pool.acquire_many(t, k)
        g = len(got)
        s = min(g, n_live)
        units = [plist[int(i)] for i in live_idx[:s]]
        # Consume the queue exactly as the scalar picks would have
        # (before executing: _execute never touches the queue).
        if g == k:
            pending.clear()
        else:
            cut = int(live_idx[s - 1]) + 1 if s else 0
            for _ in range(cut):
                pending.popleft()
        self._consume_bulk(units)
        DISPATCH_STATS["pairing_wall"] += perf_counter() - wall0
        execute = self._execute
        for unit, (node, end) in zip(units, got):
            execute(unit, node, end)
        for node, _end in got[n_live:]:  # the set-aside extra draw
            self.pool.release(node, t)
        if pending:
            self._arm_wakeup()

    def _dispatch_scalar(self) -> None:
        """Scalar reference loop (the historical `_dispatch` body) —
        kept verbatim as the transcript oracle for the bulk pass and
        as the fallback for queues the precondition cannot certify."""
        t = self.sim.now
        set_aside: List[Tuple[Node, float]] = []
        while self.pending:
            got = self.pool.acquire(t)
            if got is None:
                break
            node, end = got
            unit = self._pick_unit(node)
            if unit is None:
                # Nothing this node may run (e.g. BOINC already has a
                # replica of every pending workunit on it) — set it
                # aside so acquire() does not hand it straight back.
                set_aside.append((node, end))
                continue
            self._execute(unit, node, end)
        for node, _end in set_aside:
            self.pool.release(node, t)
        if self.pending:
            self._arm_wakeup()

    def _bulk_eligible(self, rows: np.ndarray,
                       live_idx: np.ndarray) -> bool:
        """Whether every live pending entry is consumable by any node
        the pool may draw — the bulk precondition.  Base: unit picks
        that never inspect the node (XWHEP FIFO) always qualify;
        BOINC narrows this (see its override)."""
        return True

    def _consume_bulk(self, units: List[TaskState]) -> None:
        """Apply :meth:`_pick_unit`'s per-unit side effects to a bulk
        pick (XWHEP clears ``queued``; BOINC's pick only deletes)."""

    def _arm_wakeup(self) -> None:
        """Schedule a dispatch retry when an away node next returns.

        Every other dispatch trigger (release, reissue, arrival) is
        event-driven; this covers the one case with no event of its
        own — all nodes simultaneously away.
        """
        t = self.sim.now
        if self._wakeup is not None and not self._wakeup.cancelled:
            return
        nxt = self.pool.next_future_start(t)
        if nxt is None or nxt <= t:
            return
        self._wakeup = self.sim.at(nxt, self._on_wakeup)

    def _on_wakeup(self) -> None:
        self._wakeup = None
        if self.pending:
            self._dispatch()

    def teardown(self) -> None:
        """End-of-run cleanup: cancel the pending dispatch wake-up so a
        drained simulation doesn't keep a dead timer in the event heap.
        Only safe once the run has terminally stopped (cancelling a
        wake-up mid-run would change the dispatch schedule); the
        harness wires this through the engine's stop hooks."""
        if self._wakeup is not None:
            self._wakeup.cancel()
            self._wakeup = None

    # ------------------------------------------------------------------
    # completion bookkeeping (shared by all paths)
    # ------------------------------------------------------------------
    def _mark_assigned(self, st: TaskState, node: Node) -> None:
        t = self.sim.now
        self.stats.assignments += 1
        if node.cloud:
            self.stats.cloud_assignments += 1
            self._cloud_busy_since[node.node_id] = t
        st.workers.add(node.node_id)
        st.add_outstanding(1)
        self._busy[node.node_id] = st.gtid
        if st.first_assign_time is None:
            st.set_first_assign(t)
            prog = self._bots.get(st.gtid[0])
            if prog is not None:
                prog.assigned += 1
            self._emit("on_task_first_assigned", st.gtid, t)

    def _node_freed(self, node: Node) -> None:
        self._busy.pop(node.node_id, None)
        since = self._cloud_busy_since.pop(node.node_id, None)
        if since is not None:
            acc = self._cloud_busy_acc.get(node.node_id, 0.0)
            self._cloud_busy_acc[node.node_id] = acc + (self.sim.now - since)
        cb = self._idle_callbacks.get(node.node_id)
        if cb is not None:
            # Fire asynchronously so the agent sees a settled server.
            self.sim.schedule(0.0, cb)  # type: ignore[arg-type]

    def cloud_busy_seconds(self, node: Node) -> float:
        """Total CPU seconds this cloud worker spent computing here
        (including the in-flight unit) — the §3.3 billing basis."""
        total = self._cloud_busy_acc.get(node.node_id, 0.0)
        since = self._cloud_busy_since.get(node.node_id)
        if since is not None:
            total += self.sim.now - since
        return total

    def cloud_usage_of(self, node_ids, now: float):
        """Bulk ``(busy_seconds, busy)`` per node id — one call per
        billing tick instead of two lookups per handle.  Same per-id
        arithmetic as :meth:`cloud_busy_seconds`/:meth:`is_busy`."""
        acc = self._cloud_busy_acc
        since_map = self._cloud_busy_since
        busy_map = self._busy
        # comprehensions over ``in``/subscript keep the per-id work in
        # straight bytecode (no per-id method calls on the hot path);
        # the in-flight add only happens when a since-mark exists, so
        # the float result is the scalar accessor's exactly
        totals = [
            (acc[nid] if nid in acc else 0.0) + (now - since_map[nid])
            if nid in since_map
            else (acc[nid] if nid in acc else 0.0)
            for nid in node_ids]
        busy = [nid in busy_map for nid in node_ids]
        return totals, busy

    def register_idle_callback(self, node: Node, cb) -> None:
        """Ask to be notified (next event round) whenever ``node`` goes
        idle on this server — used by Reschedule cloud agents."""
        self._idle_callbacks[node.node_id] = cb

    def unregister_idle_callback(self, node: Node) -> None:
        self._idle_callbacks.pop(node.node_id, None)

    def _complete_task(self, st: TaskState) -> None:
        """Mark a task done (idempotent) and propagate BoT completion."""
        if st.done:
            return
        t = self.sim.now
        st.mark_done()
        st.completion_time = t
        self.stats.completions += 1
        self._emit("on_task_completed", st.gtid, t)
        prog = self._bots.get(st.gtid[0])
        if prog is not None:
            prog.completed += 1
            prog.uncompleted.pop(st.gtid, None)
            if prog.completed == prog.total:
                self._emit("on_bot_completed", st.gtid[0], t)

    def external_complete(self, gtid: GTID, t: float) -> bool:
        """A result for this task was computed outside this server
        (cloud-duplication strategy).  Returns True if it was news."""
        st = self.tasks.get(gtid)
        if st is None or st.done:
            return False
        self._complete_task(st)
        return True

    # ------------------------------------------------------------------
    # cloud integration (Flat)
    # ------------------------------------------------------------------
    def add_cloud_node(self, node: Node) -> None:
        """Flat strategy: the cloud worker joins the ordinary pool."""
        if not node.cloud:
            raise ValueError("add_cloud_node expects a cloud node")
        self._flat_cloud[node.node_id] = node
        self.pool.add(node, self.sim.now)
        self._dispatch()

    def remove_cloud_node(self, node: Node) -> None:
        """Withdraw a Flat cloud worker; a running unit finishes first
        (the SpeQuloS scheduler stops billing when the node goes idle)."""
        self._flat_cloud.pop(node.node_id, None)
        self.pool.remove(node)

    def is_busy(self, node: Node) -> bool:
        """Whether the node currently executes a unit of this server."""
        return node.node_id in self._busy

    # ------------------------------------------------------------------
    # queries used by SpeQuloS and the experiment runner
    # ------------------------------------------------------------------
    def bot_progress(self, bot_id: str) -> Tuple[int, int, int]:
        """(total, arrived, completed) for a BoT."""
        prog = self._bots[bot_id]
        return prog.total, prog.arrived, prog.completed

    def bot_completed(self, bot_id: str) -> bool:
        prog = self._bots[bot_id]
        return prog.completed == prog.total

    def uncompleted_gtids(self, bot_id: str) -> List[GTID]:
        """Tasks of the BoT not yet done (arrived ones only).

        Served from the per-BoT index in arrival order — the same
        sequence the historical scan over ``tasks`` produced — so the
        cloud-duplication queue order is unchanged.
        """
        prog = self._bots.get(bot_id)
        if prog is None:
            return []
        return list(prog.uncompleted)

    def assigned_count(self, bot_id: str) -> int:
        """Tasks of the BoT that were assigned at least once."""
        prog = self._bots.get(bot_id)
        return prog.assigned if prog is not None else 0

    # ------------------------------------------------------------------
    def add_observer(self, obs: ServerObserver) -> None:
        """Subscribe; the observer's methods are bound once, here —
        methods added to the object afterwards are not seen."""
        self.observers.append(obs)
        for name, lst in self._obs_methods.items():
            fn = getattr(obs, name, None)
            if fn is not None:
                lst.append(fn)

    def _emit(self, method: str, *args) -> None:
        for fn in self._obs_methods[method]:
            fn(*args)
