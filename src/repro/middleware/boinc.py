"""BOINC middleware model.

BOINC handles volatility with *redundancy and deadlines* (§4.1.3
standard parameters):

* each workunit is replicated ``target_nresults = 3`` times;
* ``min_quorum = 2`` results complete (validate) the workunit;
* two replicas of a workunit never go to the same worker
  (``one_result_per_user_per_wu = 1``);
* a replica unreturned ``delay_bound = 86400`` s after assignment is
  written off and a replacement is generated.

Volunteer clients *suspend and resume*: when a desktop node becomes
unavailable (owner is back, machine off) the work is checkpointed and
continues when the node returns — the result is not lost, just late.
A replica therefore only "fails" by exceeding ``delay_bound``, and a
late result still counts if the workunit is incomplete when it arrives
(BOINC's actual behaviour).  This is the mechanism behind the paper's
observation that BOINC tails are far longer than XWHEP ones (slowdowns
up to 10x vs 4x, §2.2): a stalled workunit waits a full day before the
server reacts.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heapify, heappop, heappush
from typing import List, Optional, Tuple

import numpy as np

from repro.infra.node import Node
from repro.infra.pool import NodePool
from repro.middleware.base import DGServer, TaskState
from repro.simulator.engine import PRIORITY_INFRA, Event, Simulation

__all__ = ["BoincConfig", "BoincServer"]


@dataclass(frozen=True)
class BoincConfig:
    """Standard BOINC project parameters (paper §4.1.3)."""

    target_nresults: int = 3
    min_quorum: int = 2
    delay_bound: float = 86400.0
    one_result_per_user_per_wu: bool = True

    def __post_init__(self) -> None:
        if self.min_quorum < 1 or self.target_nresults < self.min_quorum:
            raise ValueError("need target_nresults >= min_quorum >= 1")
        if self.delay_bound <= 0:
            raise ValueError("delay_bound must be positive")


class _Replica:
    """One result instance of a workunit, living on one node."""

    __slots__ = ("wu", "node", "remaining", "segment_start",
                 "timeout_ev", "timed_out", "finished", "is_cloud_fetch")

    def __init__(self, wu: TaskState, node: Node):
        self.wu = wu
        self.node = node
        self.remaining = wu.task.nops
        self.segment_start = 0.0
        self.timeout_ev: Optional[Event] = None
        self.timed_out = False
        self.finished = False
        self.is_cloud_fetch = False


class BoincServer(DGServer):
    """Replication + quorum + deadline server with suspend/resume
    volunteer clients."""

    def __init__(self, sim: Simulation, pool: NodePool,
                 config: Optional[BoincConfig] = None, name: str = "boinc"):
        super().__init__(sim, pool, name)
        self.config = config or BoincConfig()
        #: incomplete workunits, for cloud duplication candidate scans
        self._incomplete: set[TaskState] = set()
        # Lazily-invalidated min-heap over the cloud-fetch candidates,
        # keyed (cloud_dups, first_assign_time|inf, gtid) — the naive
        # scan's ordering.  Invariant: every key change of an
        # incomplete workunit pushes a fresh entry (_note_fetch_
        # candidate), so the least fresh entry IS the scan's argmin;
        # outdated entries are skipped (and dropped) when popped.  The
        # seq field breaks ties between duplicate entries of one
        # workunit before the (uncomparable) TaskState is reached.
        self._fetch_heap: List[Tuple] = []
        self._fetch_seq = 0
        # The big same-instant producers: every replica assigned during
        # an arrival storm schedules its delay_bound timer at the same
        # future instant, and node churn lands suspend/resume waves on
        # shared ticks.  The handlers replay the per-event body in seq
        # order (exact by construction); batching removes the engine's
        # per-event dispatch overhead for these buckets.
        sim.register_batch(self._timeout, self._timeout_batch)
        sim.register_batch(self._suspend, self._suspend_batch)
        sim.register_batch(self._resume, self._resume_batch)

    # ------------------------------------------------------------------
    # base hooks
    # ------------------------------------------------------------------
    def _enqueue_new(self, st: TaskState) -> None:
        """Issue ``target_nresults`` replicas of a fresh workunit."""
        self._incomplete.add(st)
        self._note_fetch_candidate(st)
        for _ in range(self.config.target_nresults):
            self.pending.append(st)

    def _eligible(self, wu: TaskState, node: Node) -> bool:
        if wu.done:
            return False
        if (self.config.one_result_per_user_per_wu
                and node.node_id in wu.workers):
            return False
        return True

    def _pick_unit(self, node: Node) -> Optional[TaskState]:
        pending = self.pending
        while pending and pending[0].done:
            pending.popleft()
        for i, wu in enumerate(pending):
            if self._eligible(wu, node):
                del pending[i]
                return wu
        return None

    def _bulk_eligible(self, rows, live_idx) -> bool:
        """Bulk precondition: every live pending workunit is fresh.

        With ``one_result_per_user_per_wu`` off the scan never rejects
        a node, so any queue qualifies.  Otherwise the queue qualifies
        when no live pending workunit has a ``first_assign_time``
        (NaN in the column mirror): freshness means empty ``workers``
        sets — both only change together in ``_mark_assigned`` and are
        never reset — so the first drawn node matches the FIFO-first
        live unit.  Induction over the pass: nodes drawn within one
        :meth:`~repro.infra.pool.NodePool.acquire_many` batch are
        pairwise distinct (an acquired node re-enters the pool only
        via a release, and the bulk pass releases nothing until all
        draws are done), so after ``i`` assignments each live unit's
        ``workers`` holds only nodes drawn earlier in the pass, never
        the ``i+1``-th node — the eligibility scan again matches the
        first live unit, exactly like the scalar interleaving.  A
        replica re-queued by a timeout has a first assignment, fails
        the NaN test, and routes the whole pass to the scalar loop.
        """
        if not self.config.one_result_per_user_per_wu:
            return True
        fa = self.task_cols.first_assign
        return bool(np.isnan(fa[rows[live_idx]]).all())

    def _execute(self, wu: TaskState, node: Node, interval_end: float) -> None:
        t = self.sim.now
        fresh_fat = wu.first_assign_time is None
        self._mark_assigned(wu, node)
        if fresh_fat:  # first assignment moved the fetch key off inf
            self._note_fetch_candidate(wu)
        rep = _Replica(wu, node)
        rep.timeout_ev = self.sim.schedule(self.config.delay_bound,
                                           self._timeout, rep)
        self._progress(rep, interval_end)

    # ------------------------------------------------------------------
    # replica lifecycle: run / suspend / resume / finish / timeout
    # ------------------------------------------------------------------
    def _progress(self, rep: _Replica, interval_end: float) -> None:
        """(Re)start computing within the current availability interval."""
        t = self.sim.now
        rep.segment_start = t
        duration = rep.remaining / rep.node.power
        if t + duration <= interval_end:
            self.sim.at(t + duration, self._finish, rep)
        else:
            self.sim.at(interval_end, self._suspend, rep,
                        priority=PRIORITY_INFRA)

    def _suspend(self, rep: _Replica) -> None:
        """Node went away mid-computation; work is checkpointed."""
        t = self.sim.now
        rep.remaining -= (t - rep.segment_start) * rep.node.power
        self.stats.suspensions += 1
        nxt = rep.node.next_available(t)
        if nxt is None:
            # Node never returns within the trace: the replica is lost
            # in practice; only the delay_bound timer reacts.
            self._node_freed(rep.node)
            return
        start, _end = nxt
        self.sim.at(start, self._resume, rep)

    def _resume(self, rep: _Replica) -> None:
        t = self.sim.now
        self.stats.resumes += 1
        iv = rep.node.interval_at(t)
        if iv is None:  # pragma: no cover - defensive; resume is scheduled
            self._suspend(rep)  # at an interval start, so iv must exist
            return
        self._progress(rep, iv[1])

    def _finish(self, rep: _Replica) -> None:
        """A result arrives at the server (possibly after its deadline)."""
        t = self.sim.now
        rep.finished = True
        wu = rep.wu
        if rep.timeout_ev is not None:
            rep.timeout_ev.cancel()
        self._node_freed(rep.node)
        if not rep.timed_out:
            wu.add_outstanding(-1)
        if rep.is_cloud_fetch:
            wu.add_cloud_dups(-1)
            if not wu.done:  # key shrank; completion below retires it
                self._note_fetch_candidate(wu)
        if wu.done:
            self.stats.discarded_results += 1
        else:
            wu.ok_results += 1
            if wu.ok_results >= self.config.min_quorum:
                self._complete_task(wu)
                self._incomplete.discard(wu)
        self.pool.release(rep.node, t)
        self._dispatch()

    def _arrive_batch(self, argslist) -> None:
        """Arrival storm; merged dispatch when the queue starts empty.

        With no earlier pending workunits, every unit in the merged
        queue is fresh, so by induction no drawn node can sit in any
        workunit's ``workers`` set (a node only re-enters the pool via
        a set-aside, which requires an ineligible draw first) — the
        eligibility scan always matches the first live unit, exactly as
        it would under per-arrival dispatch, and the RNG draw sequence
        is the per-arrival concatenation.  With older units already
        queued the one-result-per-user scan can set a node aside under
        one queue shape but match it under the other, so the exact
        per-event replay from the base class runs instead.
        """
        if self.pending:
            super()._arrive_batch(argslist)
            return
        for bot_id, task in argslist:
            self._arrive_one(bot_id, task)
        self._dispatch()

    def _suspend_batch(self, argslist) -> None:
        for (rep,) in argslist:
            self._suspend(rep)

    def _resume_batch(self, argslist) -> None:
        for (rep,) in argslist:
            self._resume(rep)

    def _timeout_batch(self, argslist) -> None:
        for (rep,) in argslist:
            self._timeout(rep)

    def _timeout(self, rep: _Replica) -> None:
        """``delay_bound`` elapsed with no result: write the replica off
        (it may still return later) and generate a replacement."""
        if rep.finished or rep.wu.done:
            return
        rep.timed_out = True
        wu = rep.wu
        wu.add_outstanding(-1)
        self.stats.timeouts += 1
        if wu.ok_results < self.config.min_quorum:
            self.stats.reissues += 1
            self.pending.append(wu)
            self._dispatch()

    # ------------------------------------------------------------------
    def external_complete(self, gtid, t) -> bool:
        news = super().external_complete(gtid, t)
        if news:
            self._incomplete.discard(self.tasks[gtid])
        return news

    # ------------------------------------------------------------------
    # Reschedule-strategy cloud interface
    # ------------------------------------------------------------------
    def _fetch_key(self, wu: TaskState) -> Tuple:
        """The candidate ordering of the historical min-scan."""
        return (wu.cloud_dups,
                wu.first_assign_time if wu.first_assign_time is not None
                else float("inf"),
                wu.gtid)

    def _note_fetch_candidate(self, wu: TaskState) -> None:
        """Push the workunit's *current* key onto the fetch heap.

        Called at every site that changes a key component while the
        workunit is incomplete (enqueue, first assignment, cloud-dup
        start/return) — the freshness invariant the heap pick relies
        on.  Old entries are not removed; :meth:`fetch_for_cloud`
        drops them when they surface.
        """
        self._fetch_seq += 1
        heappush(self._fetch_heap, (*self._fetch_key(wu),
                                    self._fetch_seq, wu))

    def _fetch_candidate_scan(self, node: Node) -> Optional[TaskState]:
        """Naive O(incomplete) candidate scan — the reference the heap
        pick is property-tested against (tests/test_boinc_fetch_heap)."""
        best: Optional[TaskState] = None
        best_key = None
        for cand in self._incomplete:
            if not self._eligible(cand, node):
                continue
            key = self._fetch_key(cand)
            if best_key is None or key < best_key:
                best, best_key = cand, key
        return best

    def fetch_for_cloud(self, node: Node) -> Optional[TaskState]:
        """Serve a dedicated cloud worker: pending replicas first, then
        an extra replica of the least-served incomplete workunit.

        The candidate pick pops the lazily-invalidated heap instead of
        scanning ``_incomplete``: outdated and completed entries are
        dropped, entries ineligible for *this* node (one-result-per-
        user) are set aside and pushed back, and the first fresh
        eligible entry is exactly the scan's argmin (unique gtid
        tiebreak + the freshness invariant).
        """
        wu = self._pick_unit(node)
        if wu is not None:
            self._execute_cloud(wu, node)
            return wu
        best = self._fetch_candidate_pick(node)
        if best is None:
            return None
        self._execute_cloud(best, node)
        return best

    def _fetch_candidate_pick(self, node: Node) -> Optional[TaskState]:
        """Heap-based candidate pick — equals the naive scan's argmin."""
        heap = self._fetch_heap
        if len(heap) > 64 and len(heap) > 4 * len(self._incomplete):
            self._rebuild_fetch_heap()
            heap = self._fetch_heap
        one_per_user = self.config.one_result_per_user_per_wu
        nid = node.node_id
        best: Optional[TaskState] = None
        stash: List[Tuple] = []
        while heap:
            entry = heappop(heap)
            cand = entry[4]
            if cand.done:
                continue  # retired; drop every copy for good
            if (entry[0] != cand.cloud_dups
                    or entry[1] != (cand.first_assign_time
                                    if cand.first_assign_time is not None
                                    else float("inf"))):
                continue  # outdated key; a fresh entry exists below
            if one_per_user and nid in cand.workers:
                stash.append(entry)  # valid, just not for this node
                continue
            best = cand
            stash.append(entry)  # key changes next; entry dies lazily
            break
        for entry in stash:
            heappush(heap, entry)
        return best

    def _rebuild_fetch_heap(self) -> None:
        """Compact away accumulated outdated entries (heuristic,
        triggered when the heap far outgrows the candidate set)."""
        self._fetch_heap = []
        for wu in self._incomplete:
            self._fetch_seq += 1
            self._fetch_heap.append((*self._fetch_key(wu),
                                     self._fetch_seq, wu))
        heapify(self._fetch_heap)

    def _execute_cloud(self, wu: TaskState, node: Node) -> None:
        """Start an extra replica on a dedicated (stable) cloud worker."""
        self._mark_assigned(wu, node)
        rep = _Replica(wu, node)
        rep.is_cloud_fetch = True
        wu.add_cloud_dups(1)
        self._note_fetch_candidate(wu)  # cloud_dups moved the key up
        # Stable workers cannot miss delay_bound; no timer needed.
        self._progress(rep, float("inf"))
