"""Deposit policies as scheduled economics objects.

§3.3's administrator deposit function ("a simple policy that limits
SpeQuloS usage of a Cloud to 200 nodes per day") existed only as the
one-off :class:`~repro.core.credit.CappedDailyDeposit` that callers had
to remember to apply.  Here deposit policies become first-class
scheduled objects: a :class:`DepositSchedule` owned by the scenario
harness ticks each policy over *virtual* time, so pools refill and
rations reset while the simulation runs — no manual bookkeeping.

Three policies cover the ROADMAP's "deposit policies feeding pools over
time" item:

* :class:`AccountTopUp` — the paper's capped daily deposit, scheduled:
  every ``period`` the user account is topped back up to ``cap``;
* :class:`PoolTopUp` — feed a *shared* :class:`~repro.core.credit.
  CreditPool` from a funding account in periodic installments
  (optionally bounded by ``max_total``), so a pool provisions over
  time instead of all at once;
* :class:`AllowanceRation` — per-tenant rationing: every period each
  open pooled order's spend cap resets to ``spent + per_member``, a
  time-sliced allowance that complements the arbiter's per-tick
  fair-share rebalancing with an administrator-set rate.

Every policy implements ``apply(credits, now) -> float`` (the amount
moved) and exposes ``period``; anything with that shape can join a
schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = ["AccountTopUp", "AllowanceRation", "DepositSchedule",
           "PoolTopUp"]


@dataclass
class AccountTopUp:
    """Top a user account back up to ``cap`` every ``period`` seconds."""

    user: str
    cap: float = 6000.0
    period: float = 86400.0
    #: cumulative credits this policy deposited
    deposited: float = 0.0

    def __post_init__(self) -> None:
        if self.cap <= 0:
            raise ValueError("cap must be positive")
        if self.period <= 0:
            raise ValueError("period must be positive")

    def apply(self, credits, now: float) -> float:
        topup = max(0.0, self.cap - credits.balance(self.user))
        if topup:
            credits.deposit(self.user, topup)
            self.deposited += topup
        return topup


@dataclass
class PoolTopUp:
    """Feed a shared pool from a funding account in installments.

    Each application moves up to ``amount`` credits from ``user`` into
    the pool's provision (never more than the account holds, never past
    ``max_total`` cumulative); a closed or missing pool is a no-op, so
    the schedule outliving the scenario is harmless.
    """

    pool_id: str
    user: str
    amount: float
    period: float = 86400.0
    #: cumulative cap on what this policy may feed (None = unbounded)
    max_total: Optional[float] = None
    deposited: float = 0.0

    def __post_init__(self) -> None:
        if self.amount <= 0:
            raise ValueError("amount must be positive")
        if self.period <= 0:
            raise ValueError("period must be positive")
        if self.max_total is not None and self.max_total <= 0:
            raise ValueError("max_total must be positive or None")

    def apply(self, credits, now: float) -> float:
        pool = credits.get_pool(self.pool_id)
        if pool is None or pool.closed:
            return 0.0
        amount = self.amount
        if self.max_total is not None:
            amount = min(amount, max(0.0, self.max_total - self.deposited))
        amount = min(amount, credits.balance(self.user))
        if amount <= 0:
            return 0.0
        credits.fund_pool(self.pool_id, self.user, amount)
        self.deposited += amount
        return amount


@dataclass
class AllowanceRation:
    """Reset every open pooled order's allowance to ``spent +
    per_member`` each period — an administrator-rate ration on top of
    (or instead of) the arbiter's fair-share rebalancing."""

    pool_id: str
    per_member: float
    period: float = 3600.0

    def __post_init__(self) -> None:
        if self.per_member <= 0:
            raise ValueError("per_member must be positive")
        if self.period <= 0:
            raise ValueError("period must be positive")

    def apply(self, credits, now: float) -> float:
        pool = credits.get_pool(self.pool_id)
        if pool is None or pool.closed:
            return 0.0
        rationed = 0.0
        for member in pool.members:
            order = credits.get_order(member)
            if order is None or order.closed:
                continue
            credits.set_allowance(member, order.spent + self.per_member)
            rationed += self.per_member
        return rationed


class DepositSchedule:
    """Ticks deposit policies over virtual time.

    The harness owns one per scenario (:meth:`~repro.experiments.
    harness.ScenarioHarness.schedule_deposits`); each policy fires
    every ``policy.period`` seconds of simulation time, starting one
    period in (the opening provision is the scenario's to make).
    ``applied`` logs ``(now, policy_class, amount)`` for reports.
    """

    def __init__(self, sim, credits, policies=()):
        self.sim = sim
        self.credits = credits
        self.policies = list(policies)
        self.applied: List[Tuple[float, str, float]] = []
        self._started = False

    def add(self, policy) -> None:
        self.policies.append(policy)
        if self._started:
            self._schedule(policy)

    def start(self) -> "DepositSchedule":
        if self._started:
            return self
        self._started = True
        for policy in self.policies:
            self._schedule(policy)
        return self

    def _schedule(self, policy) -> None:
        self.sim.schedule(policy.period, self._tick, policy)

    def _tick(self, policy) -> None:
        amount = policy.apply(self.credits, self.sim.now)
        self.applied.append((self.sim.now, type(policy).__name__, amount))
        self._schedule(policy)

    def total_applied(self) -> float:
        return sum(amount for _t, _name, amount in self.applied)
