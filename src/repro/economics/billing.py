"""Unified billing: one per-provider accounting source for credits.

The Scheduler used to price Cloud usage inline
(``credits_per_cpu_hour * busy_seconds / 3600``), which welded the
whole service to one exchange rate.  The :class:`BillingMeter` owns
that conversion: it reads the rate from the scenario's
:class:`~repro.economics.pricing.PriceBook` (per provider, per tier,
optionally time-varying), bills the
:class:`~repro.core.credit.CreditSystem`, and keeps the per-provider
ledger every consumer shares —

* the Scheduler's Algorithm 2 billing loop charges usage through
  :meth:`charge`;
* launch sizing and the :class:`~repro.core.scheduler.CloudArbiter`'s
  ``credit_budget`` read spendable credits through
  :meth:`remaining_for` (pool-aware, delegated to the credit system);
* reports read :attr:`spent_by_provider` / :attr:`cpu_seconds_by_provider`
  for the per-cloud cost split.

Drift discipline: with the default uniform book the charge arithmetic
is float-for-float identical to the inline formula it replaced
(``rate * busy_seconds / 3600.0`` with the same ``rate``), so default
scenarios stay byte-identical.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.economics.pricing import ONDEMAND, PriceBook

__all__ = ["BillingMeter"]


class BillingMeter:
    """Prices Cloud usage per provider and bills the credit system."""

    def __init__(self, credits, book: Optional[PriceBook] = None):
        #: the scenario's :class:`~repro.core.credit.CreditSystem`
        self.credits = credits
        #: the pricing source (uniform paper rate unless a scenario
        #: attaches its own)
        self.book = book if book is not None else PriceBook()
        #: credits actually billed, keyed by provider name
        self.spent_by_provider: Dict[str, float] = {}
        #: busy CPU·seconds charged, keyed by provider name
        self.cpu_seconds_by_provider: Dict[str, float] = {}

    # ------------------------------------------------------------ rates
    def rate_for(self, provider: str, now: float = 0.0,
                 tier: str = ONDEMAND) -> float:
        """Credits per CPU·hour this provider charges right now."""
        return self.book.rate(provider, now, tier)

    def affordable_cpu_hours(self, provider: str, budget: float,
                             now: float = 0.0,
                             tier: str = ONDEMAND) -> float:
        """CPU·hours a credit budget buys from one provider."""
        if budget <= 0:
            return 0.0
        return budget / self.rate_for(provider, now, tier)

    # ---------------------------------------------------------- billing
    def charge(self, bot_id: str, provider: str, busy_seconds: float,
               now: float = 0.0,
               tier: str = ONDEMAND) -> Tuple[float, float]:
        """Bill one worker's usage since the last tick.

        Returns ``(billed, asked)``: ``asked`` is the priced amount,
        ``billed`` what the order's remaining escrow could cover (the
        credit system clamps, exactly as before) — the Scheduler stops
        workers when ``billed < asked``.
        """
        if busy_seconds <= 0:
            return 0.0, 0.0
        asked = self.rate_for(provider, now, tier) * busy_seconds / 3600.0
        billed = self.credits.bill(bot_id, asked)
        if billed:
            self.spent_by_provider[provider] = \
                self.spent_by_provider.get(provider, 0.0) + billed
        self.cpu_seconds_by_provider[provider] = \
            self.cpu_seconds_by_provider.get(provider, 0.0) + busy_seconds
        return billed, asked

    # ------------------------------------------------------- credit view
    def remaining_for(self, bot_id: str) -> float:
        """Spendable credits behind an order (pool-aware) — the budget
        launch sizing and arbitration read."""
        return self.credits.remaining_for(bot_id)

    def has_credits(self, bot_id: str) -> bool:
        return self.credits.has_credits(bot_id)

    # -------------------------------------------------------- reporting
    def spent_for(self, provider: str) -> float:
        return self.spent_by_provider.get(provider, 0.0)

    def total_spent(self) -> float:
        """Credits billed through this meter, all providers — additive
        by construction (the invariant the property tests pin)."""
        return sum(self.spent_by_provider.values())
