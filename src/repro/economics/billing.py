"""Unified billing: one per-provider accounting source for credits.

The Scheduler used to price Cloud usage inline
(``credits_per_cpu_hour * busy_seconds / 3600``), which welded the
whole service to one exchange rate.  The :class:`BillingMeter` owns
that conversion: it reads the rate from the scenario's
:class:`~repro.economics.pricing.PriceBook` (per provider, per tier,
optionally time-varying), bills the
:class:`~repro.core.credit.CreditSystem`, and keeps the per-provider
ledger every consumer shares —

* the Scheduler's Algorithm 2 billing loop charges usage through
  :meth:`charge`;
* launch sizing and the :class:`~repro.core.scheduler.CloudArbiter`'s
  ``credit_budget`` read spendable credits through
  :meth:`remaining_for` (pool-aware, delegated to the credit system);
* reports read :attr:`spent_by_provider` / :attr:`cpu_seconds_by_provider`
  for the per-cloud cost split.

Drift discipline: with the default uniform book the charge arithmetic
is float-for-float identical to the inline formula it replaced
(``rate * busy_seconds / 3600.0`` with the same ``rate``), so default
scenarios stay byte-identical.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.economics.pricing import ONDEMAND, PriceBook

__all__ = ["BillingMeter", "BILLING_STATS", "reset_billing_stats"]

#: charge telemetry (process-wide): ``charges`` = individual usage
#: charges priced (scalar or batched), ``batches`` = charge_many calls.
#: The engine bench reports charges/sec from these.
BILLING_STATS = {"charges": 0, "batches": 0}


def reset_billing_stats() -> None:
    BILLING_STATS["charges"] = 0
    BILLING_STATS["batches"] = 0


class BillingMeter:
    """Prices Cloud usage per provider and bills the credit system."""

    def __init__(self, credits, book: Optional[PriceBook] = None):
        #: the scenario's :class:`~repro.core.credit.CreditSystem`
        self.credits = credits
        #: the pricing source (uniform paper rate unless a scenario
        #: attaches its own)
        self.book = book if book is not None else PriceBook()
        #: credits actually billed, keyed by provider name
        self.spent_by_provider: Dict[str, float] = {}
        #: busy CPU·seconds charged, keyed by provider name
        self.cpu_seconds_by_provider: Dict[str, float] = {}

    # ------------------------------------------------------------ rates
    def rate_for(self, provider: str, now: float = 0.0,
                 tier: str = ONDEMAND) -> float:
        """Credits per CPU·hour this provider charges right now."""
        return self.book.rate(provider, now, tier)

    def affordable_cpu_hours(self, provider: str, budget: float,
                             now: float = 0.0,
                             tier: str = ONDEMAND) -> float:
        """CPU·hours a credit budget buys from one provider."""
        if budget <= 0:
            return 0.0
        return budget / self.rate_for(provider, now, tier)

    # ---------------------------------------------------------- billing
    def charge(self, bot_id: str, provider: str, busy_seconds: float,
               now: float = 0.0,
               tier: str = ONDEMAND) -> Tuple[float, float]:
        """Bill one worker's usage since the last tick.

        Returns ``(billed, asked)``: ``asked`` is the priced amount,
        ``billed`` what the order's remaining escrow could cover (the
        credit system clamps, exactly as before) — the Scheduler stops
        workers when ``billed < asked``.
        """
        if busy_seconds <= 0:
            return 0.0, 0.0
        asked = self.rate_for(provider, now, tier) * busy_seconds / 3600.0
        billed = self.credits.bill(bot_id, asked)
        if billed:
            self.spent_by_provider[provider] = \
                self.spent_by_provider.get(provider, 0.0) + billed
        self.cpu_seconds_by_provider[provider] = \
            self.cpu_seconds_by_provider.get(provider, 0.0) + busy_seconds
        BILLING_STATS["charges"] += 1
        return billed, asked

    def charge_many(self, bot_id: str, provider: str,
                    busy_deltas: Sequence[float], now: float = 0.0,
                    tier: str = ONDEMAND) -> int:
        """Bill one provider's workers for one tick as a batch.

        Byte-identical to calling :meth:`charge` once per delta in
        order: within a tick ``now`` is fixed, so the rate is resolved
        once and every ``asked`` is the same float the scalar calls
        would price; the escrow clamping and ledger appends run per
        delta inside :meth:`CreditSystem.bill_many
        <repro.core.credit.CreditSystem.bill_many>` (float-identical
        to the repeated ``bill`` calls), and the per-provider totals
        accumulate in the same addition order as the repeated dict
        read-modify-writes.

        Returns the index of the first delta whose charge fell short
        (``billed < asked - 1e-9`` — the Scheduler's exhaustion test),
        or ``-1`` when every delta was covered.  Deltas after a
        shortfall are left uncharged, exactly as the historical loop
        stopped billing once the run was being torn down.
        """
        rate = self.rate_for(provider, now, tier)
        BILLING_STATS["batches"] += 1
        if not busy_deltas:
            return -1
        if min(busy_deltas) > 0:
            # all-positive batch (the vectorized scan pre-filters):
            # delta indices map 1:1 onto bill indices
            billed_seq, fail = self.credits.bill_many(
                bot_id, [rate * b / 3600.0 for b in busy_deltas],
                shortfall_tol=1e-9)
            busy_attempted = busy_deltas
        else:
            attempts = [(i, busy_seconds)
                        for i, busy_seconds in enumerate(busy_deltas)
                        if busy_seconds > 0]
            if not attempts:
                return -1
            billed_seq, fail = self.credits.bill_many(
                bot_id, [rate * b / 3600.0 for _, b in attempts],
                shortfall_tol=1e-9)
            busy_attempted = [b for _, b in attempts]
            if fail >= 0:
                fail = attempts[fail][0]
        spent = self.spent_by_provider.get(provider, 0.0)
        cpu = self.cpu_seconds_by_provider.get(provider, 0.0)
        for j, billed in enumerate(billed_seq):
            if billed:
                spent = spent + billed
            cpu = cpu + busy_attempted[j]
        if spent:
            self.spent_by_provider[provider] = spent
        self.cpu_seconds_by_provider[provider] = cpu
        BILLING_STATS["charges"] += len(billed_seq)
        return fail

    # ------------------------------------------------------- credit view
    def remaining_for(self, bot_id: str) -> float:
        """Spendable credits behind an order (pool-aware) — the budget
        launch sizing and arbitration read."""
        return self.credits.remaining_for(bot_id)

    def has_credits(self, bot_id: str) -> bool:
        return self.credits.has_credits(bot_id)

    # -------------------------------------------------------- reporting
    def spent_for(self, provider: str) -> float:
        return self.spent_by_provider.get(provider, 0.0)

    def total_spent(self) -> float:
        """Credits billed through this meter, all providers — additive
        by construction (the invariant the property tests pin)."""
        return sum(self.spent_by_provider.values())
