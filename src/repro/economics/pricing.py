"""Per-provider pricing: the exchange rates of the economics plane.

The paper's credit system (§3.3) fixes one exchange rate — 15 credits
per CPU·hour of Cloud worker usage — and the reproduction hard-coded it
wherever credits met CPU time.  Real federated deployments buy their
supplements from clouds with very different prices (Thai et al.,
"Executing Bag of Distributed Tasks on Virtually Unlimited Cloud
Resources", model exactly this cost/makespan trade-off), so the rate
becomes data: a :class:`PriceBook` maps provider names to credit rates,
with two tiers (on-demand and spot) and a *time-varying hook* — a rate
may be a plain number or any ``f(now) -> rate`` callable, which is how
an :class:`~repro.infra.spot.SpotMarket` price trace drives the spot
tier (:func:`spot_rate`).

The default book is uniform at :data:`~repro.core.credit.
CREDITS_PER_CPU_HOUR` for every provider, so every pre-economics code
path keeps its exact arithmetic: a uniform book multiplies by the same
float the inline constant used to.

Declarative form: scenario configs carry pricing as hashable
``(provider, rate)`` pairs (:meth:`PriceBook.from_pairs`); the CLI
accepts the same pairs as ``provider=rate`` text (:func:`parse_pricing`).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.core.credit import CREDITS_PER_CPU_HOUR

__all__ = ["ONDEMAND", "SPOT", "PRICE_TIERS", "ProviderPricing",
           "PriceBook", "parse_pricing", "spot_rate", "RATE_STATS",
           "reset_rate_stats"]

#: static-rate fast-path telemetry (process-wide, like the harness's
#: trace-cache counters): ``hits`` = rate reads served from a static
#: book's cache, ``resolves`` = full ``pricing_for(...).rate(...)``
#: resolutions.  Reported in the engine bench's scheduler subsection.
RATE_STATS = {"hits": 0, "resolves": 0}


def reset_rate_stats() -> None:
    RATE_STATS["hits"] = 0
    RATE_STATS["resolves"] = 0

#: price tiers a provider may quote
ONDEMAND = "ondemand"
SPOT = "spot"
PRICE_TIERS = (ONDEMAND, SPOT)

#: a rate is a constant or a function of virtual time (credits/CPU·h)
RateLike = Union[float, int, Callable[[float], float]]


def _resolve(rate: RateLike, now: float) -> float:
    value = rate(now) if callable(rate) else float(rate)
    if value < 0:
        raise ValueError(f"price resolved to a negative rate: {value!r}")
    return float(value)


class ProviderPricing:
    """One provider's quote: on-demand rate plus an optional spot tier.

    Rates are credits per CPU·hour; either tier accepts a constant or
    an ``f(now)`` callable (the time-varying hook).  A provider without
    a spot tier quotes its on-demand rate for spot requests — the
    conservative reading (you never pay less than quoted).
    """

    def __init__(self, ondemand: RateLike,
                 spot: Optional[RateLike] = None):
        if not callable(ondemand) and float(ondemand) <= 0:
            raise ValueError("ondemand rate must be positive")
        if spot is not None and not callable(spot) and float(spot) <= 0:
            raise ValueError("spot rate must be positive")
        self.ondemand = ondemand
        self.spot = spot

    def rate(self, now: float = 0.0, tier: str = ONDEMAND) -> float:
        """Credits per CPU·hour quoted at virtual time ``now``."""
        if tier not in PRICE_TIERS:
            raise ValueError(f"unknown price tier {tier!r}; available: "
                             f"{', '.join(PRICE_TIERS)}")
        if tier == SPOT and self.spot is not None:
            return _resolve(self.spot, now)
        return _resolve(self.ondemand, now)

    @property
    def time_varying(self) -> bool:
        return callable(self.ondemand) or callable(self.spot)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ProviderPricing(ondemand={self.ondemand!r}, "
                f"spot={self.spot!r})")


class PriceBook:
    """Credits/CPU·hour per provider — the single pricing source.

    ``rates`` maps lower-cased provider names to a
    :class:`ProviderPricing`, a plain rate, or an ``f(now)`` callable;
    providers absent from the map quote ``default`` (the paper's 15
    unless overridden).  The :class:`~repro.economics.billing.
    BillingMeter`, the admission controller's cost predictions and the
    ``cheapest_drain`` router all read rates from here, so one object
    defines the scenario's economy.
    """

    def __init__(self, rates: Optional[Mapping[str, Union[
            ProviderPricing, RateLike]]] = None,
            default: float = CREDITS_PER_CPU_HOUR):
        if default <= 0:
            raise ValueError("default rate must be positive")
        self.default = float(default)
        self._rates: Dict[str, ProviderPricing] = {}
        # static-rate fast path: (provider, tier) -> resolved rate,
        # populated only once is_static() holds (see rate()).
        self._rate_cache: Dict[Tuple[str, str], float] = {}
        self._static: Optional[bool] = None
        for name, rate in (rates or {}).items():
            self.set_rate(name, rate)

    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, rate: float = CREDITS_PER_CPU_HOUR) -> "PriceBook":
        """The fixed-exchange-rate economy of the paper (§3.3)."""
        return cls(default=rate)

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[str, float]],
                   default: float = CREDITS_PER_CPU_HOUR) -> "PriceBook":
        """Book from the hashable ``(provider, rate)`` pairs scenario
        configs carry."""
        return cls(rates=dict(pairs), default=default)

    @classmethod
    def from_profiles(cls, profiles: Iterable,
                      default: float = CREDITS_PER_CPU_HOUR) -> "PriceBook":
        """Book seeded from :class:`~repro.cloud.api.ProviderProfile`
        price fields (``price_per_cpu_hour`` / ``spot_price_per_cpu_hour``)."""
        rates: Dict[str, ProviderPricing] = {}
        for profile in profiles:
            rates[profile.name] = ProviderPricing(
                profile.price_per_cpu_hour,
                getattr(profile, "spot_price_per_cpu_hour", None))
        return cls(rates=rates, default=default)

    # ------------------------------------------------------------------
    def set_rate(self, provider: str,
                 rate: Union[ProviderPricing, RateLike]) -> None:
        pricing = rate if isinstance(rate, ProviderPricing) \
            else ProviderPricing(rate)
        self._rates[provider.lower()] = pricing
        self._rate_cache.clear()
        self._static = None

    def pricing_for(self, provider: str) -> ProviderPricing:
        return self._rates.get(provider.lower(),
                               ProviderPricing(self.default))

    def is_static(self) -> bool:
        """True when no quote is time-varying, so a rate resolved once
        stays valid for every later ``now`` — the license for the
        scheduler's per-provider rate cache.  Any :meth:`set_rate` after
        this is answered invalidates the cache and re-derives it."""
        if self._static is None:
            self._static = all(not p.time_varying
                               for p in self._rates.values())
        return self._static

    def rate(self, provider: str, now: float = 0.0,
             tier: str = ONDEMAND) -> float:
        """Credits per CPU·hour of one provider at virtual time ``now``.

        For static books (:meth:`is_static`) the resolved rate is cached
        per ``(provider, tier)`` — the cached float is exactly the value
        the first resolution produced, so billing arithmetic is
        unchanged; time-varying books resolve on every call.
        """
        key = (provider, tier)
        cached = self._rate_cache.get(key)
        if cached is not None:
            RATE_STATS["hits"] += 1
            return cached
        value = self.pricing_for(provider).rate(now, tier)
        RATE_STATS["resolves"] += 1
        if self.is_static():
            self._rate_cache[key] = value
        return value

    def providers(self) -> List[str]:
        """Providers with an explicit (non-default) quote, sorted."""
        return sorted(self._rates)

    @property
    def is_uniform(self) -> bool:
        """True when every provider quotes the same constant rate —
        the regime in which the economics plane is bit-identical to
        the fixed exchange rate it replaced."""
        return all(not p.time_varying
                   and p.rate() == self.default
                   for p in self._rates.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        quotes = ", ".join(f"{name}={pricing.rate():g}"
                           for name, pricing in sorted(self._rates.items()))
        return f"PriceBook(default={self.default:g}{', ' + quotes if quotes else ''})"


def parse_pricing(text: str) -> Tuple[Tuple[str, float], ...]:
    """CLI pricing pairs: ``"stratuslab=6,ec2=18"`` → ``(("stratuslab",
    6.0), ("ec2", 18.0))`` — the declarative form
    :class:`~repro.experiments.config.ScenarioConfig` carries."""
    pairs: List[Tuple[str, float]] = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        if "=" not in chunk:
            raise ValueError(f"pricing entry {chunk!r} must be "
                             f"PROVIDER=RATE (e.g. ec2=18)")
        name, rate_text = chunk.split("=", 1)
        try:
            rate = float(rate_text)
        except ValueError:
            raise ValueError(f"pricing entry {chunk!r}: rate "
                             f"{rate_text!r} is not a number") from None
        if rate <= 0:
            raise ValueError(f"pricing entry {chunk!r}: rate must be "
                             f"positive")
        pairs.append((name.strip(), rate))
    return tuple(pairs)


def spot_rate(market, credits_per_dollar: float) -> Callable[[float], float]:
    """Time-varying spot rate driven by an
    :class:`~repro.infra.spot.SpotMarket` price trace.

    The market quotes dollars per instance·hour; ``credits_per_dollar``
    converts to the credit economy, so ``rate(now) =
    credits_per_dollar × market.price_at(now)`` — plug the result into
    a :class:`ProviderPricing` spot tier (or straight into a
    :class:`PriceBook` entry) and the meter bills the spike the ladder
    died under.
    """
    if credits_per_dollar <= 0:
        raise ValueError("credits_per_dollar must be positive")

    def rate(now: float) -> float:
        return credits_per_dollar * market.price_at(now)

    return rate
