"""The economics plane: pricing, billing and deposits as a subsystem.

The paper fixes one exchange rate — 15 credits per CPU·hour (§3.3) —
and the reproduction used to hard-code it in every credit-touching
layer.  This package owns the economy end to end:

* :mod:`repro.economics.pricing` — the :class:`PriceBook`: credits per
  CPU·hour per provider, on-demand and spot tiers, a time-varying hook
  so :class:`~repro.infra.spot.SpotMarket` traces can drive rates, and
  the declarative/CLI pair forms scenario configs carry;
* :mod:`repro.economics.billing` — the :class:`BillingMeter`: one
  per-provider accounting source replacing the Scheduler's inline
  rate math; launch sizing, arbitration budgets and the per-cloud
  spend ledger all read through it;
* :mod:`repro.economics.deposits` — deposit policies as scheduled
  objects the harness ticks over virtual time (account top-ups, pool
  installments, per-tenant rationing).

The default economy (uniform book at the paper's rate) is bit-identical
to the fixed exchange rate it replaced — drift goldens and EDGI Table 5
pin this.
"""

from __future__ import annotations

from repro.economics.billing import BillingMeter
from repro.economics.deposits import (
    AccountTopUp,
    AllowanceRation,
    DepositSchedule,
    PoolTopUp,
)
from repro.economics.pricing import (
    ONDEMAND,
    PRICE_TIERS,
    SPOT,
    PriceBook,
    ProviderPricing,
    parse_pricing,
    spot_rate,
)

__all__ = [
    "ONDEMAND",
    "PRICE_TIERS",
    "SPOT",
    "AccountTopUp",
    "AllowanceRation",
    "BillingMeter",
    "DepositSchedule",
    "PoolTopUp",
    "PriceBook",
    "ProviderPricing",
    "parse_pricing",
    "spot_rate",
]
