"""Campaign engine: declarative sweeps, a content-addressed result
store, and a sharded executor.

The paper's evaluation is a campaign of >25 000 simulated executions;
this package is the reproduction's single execution substrate for such
sweeps:

* :mod:`repro.campaign.spec` — declarative :class:`SweepSpec` /
  :class:`MultiTenantSweepSpec` / :class:`FederatedSweepSpec` /
  :class:`CampaignSpec` grids that expand to canonical, hashable
  config lists;
* :mod:`repro.campaign.store` — a content-addressed on-disk
  :class:`ResultStore` (stdlib SQLite) keyed by a stable digest of the
  config plus a code-version salt, with hit/miss stats and
  invalidation;
* :mod:`repro.campaign.executor` — a sharded process-pool
  :class:`CampaignExecutor` that only simulates cache misses,
  partitions work by trace realization for cache locality, survives
  worker crashes, and persists every finished result so interrupted
  campaigns resume where they stopped;
* :mod:`repro.campaign.progress` — tick/ETA reporting for long sweeps.

``experiments.runner.run_campaign`` and every ``figures.py`` report
builder run through this package, so re-running any report against a
warm store performs zero new simulations.
"""

from repro.campaign.executor import (
    CampaignExecutor,
    default_jobs,
    run_cached,
    set_default_jobs,
)
from repro.campaign.progress import ProgressReporter
from repro.campaign.spec import (
    CampaignSpec,
    FederatedSweepSpec,
    MultiTenantSweepSpec,
    SweepSpec,
    stable_seed,
)
from repro.campaign.store import (
    CODE_VERSION,
    ResultStore,
    StoreStats,
    config_digest,
    current_store,
    default_store,
    set_cache_enabled,
    set_default_store,
)

__all__ = [
    "CampaignExecutor",
    "CampaignSpec",
    "CODE_VERSION",
    "FederatedSweepSpec",
    "MultiTenantSweepSpec",
    "ProgressReporter",
    "ResultStore",
    "StoreStats",
    "SweepSpec",
    "config_digest",
    "current_store",
    "default_jobs",
    "default_store",
    "run_cached",
    "set_cache_enabled",
    "set_default_jobs",
    "set_default_store",
    "stable_seed",
]
