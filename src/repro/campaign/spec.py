"""Declarative sweep specifications.

A :class:`SweepSpec` is a cartesian grid over the single-BoT axes
(trace x middleware x category x strategy x seed x threshold x credit
fraction) that expands to a canonical list of
:class:`~repro.experiments.config.ExecutionConfig`; a
:class:`MultiTenantSweepSpec` does the same over the shared-service
axes (policy x tenant count x seed) for
:class:`~repro.experiments.config.MultiTenantConfig`; a
:class:`FederatedSweepSpec` expands the federated axes (DCI count x
routing x arbitration policy x seed) to
:class:`~repro.experiments.config.ScenarioConfig` lists.  A
:class:`CampaignSpec` bundles several sweeps under one name.

Specs are frozen dataclasses of plain tuples, so they are hashable and
comparable; two equal specs always expand to the same config list in
the same order.  Expansion order is fixed — strategies (policies)
outermost, then trace, middleware, category, seed, threshold, credit
fraction — so consumers can slice the flat result list into blocks per
strategy exactly as the hand-rolled grids in ``figures.py`` used to be
built.

Seeds come either from an explicit ``seeds`` tuple or from
:func:`stable_seed`, a CRC32 of the environment label and slot index.
CRC32 rather than ``hash()``: the builtin's string hash is salted per
process (PYTHONHASHSEED), which would silently draw fresh campaign
seeds on every run and make saved figure outputs unreproducible.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple, Union

from repro.experiments.config import (
    CampaignScale,
    DCISpec,
    ExecutionConfig,
    MultiTenantConfig,
    ScenarioConfig,
)
from repro.infra.catalog import TRACE_NAMES
from repro.middleware import MIDDLEWARE_NAMES

__all__ = ["CampaignSpec", "FederatedSweepSpec", "MultiTenantSweepSpec",
           "SweepSpec", "stable_seed", "scaled_bot_sizes"]


def stable_seed(trace: str, middleware: str, category: str,
                slot: int) -> int:
    """Stable, process-independent seed for one environment slot."""
    return zlib.crc32(
        f"{trace}/{middleware}/{category}/{slot}".encode()) % (2 ** 31)


def scaled_bot_sizes(scale: CampaignScale, categories: Sequence[str]
                     ) -> Tuple[Tuple[str, Optional[int]], ...]:
    """Per-category BoT-size overrides for a campaign scale, in the
    hashable pair form :class:`SweepSpec.bot_sizes` expects."""
    return tuple((cat, scale.bot_size(cat)) for cat in categories)


def _tuplify(value) -> tuple:
    if value is None:
        return value
    return tuple(value)


@dataclass(frozen=True)
class SweepSpec:
    """One cartesian grid of single-BoT executions."""

    traces: Tuple[str, ...] = TRACE_NAMES
    middlewares: Tuple[str, ...] = tuple(MIDDLEWARE_NAMES)
    categories: Tuple[str, ...] = ("SMALL", "BIG", "RANDOM")
    #: strategy combination names; ``None`` entries mean no SpeQuloS
    strategies: Tuple[Optional[str], ...] = (None,)
    #: explicit seeds (shared by every environment); wins over slots
    seeds: Optional[Tuple[int, ...]] = None
    #: number of :func:`stable_seed` slots per environment
    seed_slots: int = 1
    #: first slot index (distinct grids use distinct bases)
    seed_base: int = 0
    thresholds: Tuple[float, ...] = (0.9,)
    credit_fractions: Tuple[float, ...] = (0.10,)
    #: per-category task-count overrides ((category, size) pairs);
    #: categories absent from the mapping run unscaled
    bot_sizes: Optional[Tuple[Tuple[str, Optional[int]], ...]] = None
    horizon_days: float = 15.0
    provider: str = "simulation"
    max_nodes: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("traces", "middlewares", "categories", "strategies",
                     "seeds", "thresholds", "credit_fractions", "bot_sizes"):
            object.__setattr__(self, name, _tuplify(getattr(self, name)))
        for name in ("traces", "middlewares", "categories", "strategies",
                     "thresholds", "credit_fractions"):
            if not getattr(self, name):
                raise ValueError(f"{name} must be non-empty")
        if self.seeds is not None and not self.seeds:
            raise ValueError("seeds must be non-empty when given")
        if self.seeds is None and self.seed_slots < 1:
            raise ValueError("seed_slots must be >= 1")

    # ------------------------------------------------------------------
    def with_strategies(self, *strategies: Optional[str]) -> "SweepSpec":
        return replace(self, strategies=strategies)

    def bot_size_for(self, category: str) -> Optional[int]:
        for cat, size in self.bot_sizes or ():
            if cat.upper() == category.upper():
                return size
        return None

    def seeds_for(self, trace: str, middleware: str,
                  category: str) -> Tuple[int, ...]:
        if self.seeds is not None:
            return self.seeds
        return tuple(stable_seed(trace, middleware, category,
                                 self.seed_base + i)
                     for i in range(self.seed_slots))

    def n_configs(self) -> int:
        per_env = (len(self.seeds) if self.seeds is not None
                   else self.seed_slots)
        return (len(self.strategies) * len(self.traces)
                * len(self.middlewares) * len(self.categories) * per_env
                * len(self.thresholds) * len(self.credit_fractions))

    def expand(self) -> List[ExecutionConfig]:
        """The canonical config list (strategies outermost).

        Threshold and credit-fraction only influence the simulation
        when a strategy runs, so no-SpeQuloS grid points canonicalize
        those axes to their defaults — sweeping them yields *equal*
        baseline configs (one simulation, one store record) instead of
        distinct digests for physically identical runs.
        """
        defaults = ExecutionConfig.__dataclass_fields__
        cfgs: List[ExecutionConfig] = []
        for strategy in self.strategies:
            for trace in self.traces:
                for mw in self.middlewares:
                    for cat in self.categories:
                        for seed in self.seeds_for(trace, mw, cat):
                            for thr in self.thresholds:
                                for frac in self.credit_fractions:
                                    if strategy is None:
                                        thr = defaults[
                                            "strategy_threshold"].default
                                        frac = defaults[
                                            "credit_fraction"].default
                                    cfgs.append(ExecutionConfig(
                                        trace=trace, middleware=mw,
                                        category=cat, seed=seed,
                                        strategy=strategy,
                                        strategy_threshold=thr,
                                        credit_fraction=frac,
                                        bot_size=self.bot_size_for(cat),
                                        max_nodes=self.max_nodes,
                                        horizon_days=self.horizon_days,
                                        provider=self.provider))
        return cfgs


@dataclass(frozen=True)
class MultiTenantSweepSpec:
    """Cartesian grid of shared-service scenarios (contention sweeps).

    Two axes scale with the tenant count declaratively so the grid
    stays hashable: with ``pool_scaling="per-tenant"`` the pool holds
    ``pool_fraction / n`` of the aggregate workload (total provision
    independent of N, so contention grows with N), and with
    ``worker_budget_scaling="at-least-tenants"`` the global worker cap
    is ``max(worker_budget, n)``.
    """

    traces: Tuple[str, ...] = ("seti",)
    middlewares: Tuple[str, ...] = ("boinc",)
    policies: Tuple[str, ...] = ("fairshare",)
    tenant_counts: Tuple[int, ...] = (1,)
    seeds: Tuple[int, ...] = (0,)
    categories: Tuple[str, ...] = ("SMALL",)
    strategy: str = "9C-C-R"
    strategy_threshold: float = 0.9
    arrival_rate_per_hour: float = 2.0
    bot_size: Optional[int] = None
    pool_fraction: float = 0.10
    #: "fixed" | "per-tenant" (divide pool_fraction by the tenant count)
    pool_scaling: str = "fixed"
    worker_budget: Optional[int] = None
    #: "fixed" | "at-least-tenants" (raise the budget to the tenant count)
    worker_budget_scaling: str = "fixed"
    deadline_factor: Optional[float] = None
    horizon_days: float = 15.0
    provider: str = "simulation"
    max_nodes: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("traces", "middlewares", "policies", "tenant_counts",
                     "seeds", "categories"):
            object.__setattr__(self, name, _tuplify(getattr(self, name)))
            if not getattr(self, name):
                raise ValueError(f"{name} must be non-empty")
        if self.pool_scaling not in ("fixed", "per-tenant"):
            raise ValueError(f"unknown pool_scaling {self.pool_scaling!r}")
        if self.worker_budget_scaling not in ("fixed", "at-least-tenants"):
            raise ValueError("unknown worker_budget_scaling "
                             f"{self.worker_budget_scaling!r}")

    # ------------------------------------------------------------------
    def pool_fraction_for(self, n_tenants: int) -> float:
        if self.pool_scaling == "per-tenant":
            return self.pool_fraction / n_tenants
        return self.pool_fraction

    def worker_budget_for(self, n_tenants: int) -> Optional[int]:
        if self.worker_budget is None:
            return None
        if self.worker_budget_scaling == "at-least-tenants":
            return max(self.worker_budget, n_tenants)
        return self.worker_budget

    def n_configs(self) -> int:
        return (len(self.policies) * len(self.tenant_counts)
                * len(self.traces) * len(self.middlewares)
                * len(self.seeds))

    def expand(self) -> List[MultiTenantConfig]:
        """The canonical scenario list (policies outermost, then tenant
        counts, then seeds — the aggregation order of the contention
        report)."""
        cfgs: List[MultiTenantConfig] = []
        for policy in self.policies:
            for n in self.tenant_counts:
                for trace in self.traces:
                    for mw in self.middlewares:
                        for seed in self.seeds:
                            cfgs.append(MultiTenantConfig(
                                trace=trace, middleware=mw, seed=seed,
                                n_tenants=n, categories=self.categories,
                                strategy=self.strategy,
                                strategy_threshold=self.strategy_threshold,
                                policy=policy,
                                arrival_rate_per_hour=self
                                .arrival_rate_per_hour,
                                bot_size=self.bot_size,
                                pool_fraction=self.pool_fraction_for(n),
                                max_total_workers=self.worker_budget_for(n),
                                deadline_factor=self.deadline_factor,
                                horizon_days=self.horizon_days,
                                provider=self.provider,
                                max_nodes=self.max_nodes))
        return cfgs


@dataclass(frozen=True)
class FederatedSweepSpec:
    """Cartesian grid of federated scenarios.

    Axes: DCI count x routing policy x arbitration policy x price book
    x seed.  Each
    scenario's DCI tuple is built by cycling the ``dci_*`` templates to
    the requested count, so a two-template spec swept over
    ``n_dcis=(1, 2, 4)`` grows the federation while keeping every
    smaller federation a prefix of the larger one (same trace
    realizations per DCI index, thanks to the per-index RNG streams).
    """

    #: per-DCI templates, cycled to each scenario's DCI count
    dci_traces: Tuple[str, ...] = ("seti", "nd")
    dci_middlewares: Tuple[str, ...] = ("boinc",)
    dci_providers: Tuple[str, ...] = ("simulation",)
    #: per-DCI node caps, cycled like the other templates (None entries
    #: mean automatic sizing)
    dci_max_nodes: Optional[Tuple[Optional[int], ...]] = None
    #: per-DCI provider prices (credits/CPU·h), cycled like the other
    #: templates (None entries defer to the scenario price book)
    dci_prices: Optional[Tuple[Optional[float], ...]] = None
    n_dcis: Tuple[int, ...] = (2,)
    routings: Tuple[str, ...] = ("round_robin",)
    policies: Tuple[str, ...] = ("fairshare",)
    #: price-book axis: each entry is None (the paper's uniform
    #: economy) or (provider, credits/CPU·h) pairs — sweeping uniform
    #: against heterogeneous books is the economics report's grid
    pricings: Tuple[Optional[Tuple[Tuple[str, float], ...]], ...] = (None,)
    seeds: Tuple[int, ...] = (0,)
    n_tenants: int = 8
    categories: Tuple[str, ...] = ("SMALL",)
    strategy: str = "9C-C-R"
    strategy_threshold: float = 0.9
    affinity: Optional[Tuple[Tuple[str, str], ...]] = None
    arrival_rate_per_hour: float = 2.0
    bot_size: Optional[int] = None
    pool_fraction: float = 0.10
    max_total_workers: Optional[int] = None
    max_dci_workers: Optional[int] = None
    deadline_factor: Optional[float] = None
    horizon_days: float = 15.0
    #: execution-history backend per scenario (None/"memory" fresh,
    #: "persistent" the shared cross-run archive)
    history: Optional[str] = None
    #: admission-control mode per scenario (None | "reject" | "defer")
    admission: Optional[str] = None

    def __post_init__(self) -> None:
        for name in ("dci_traces", "dci_middlewares", "dci_providers",
                     "dci_max_nodes", "dci_prices", "n_dcis", "routings",
                     "policies", "seeds", "categories"):
            object.__setattr__(self, name, _tuplify(getattr(self, name)))
        if self.affinity is not None:
            # deep-tuplify: inner [category, dci] lists would break the
            # hashability every spec promises
            object.__setattr__(self, "affinity",
                               tuple(tuple(pair) for pair in self.affinity))
        # deep-tuplify the price-book axis the same way (entries are
        # None or (provider, rate) pair collections)
        object.__setattr__(self, "pricings", tuple(
            None if book is None else tuple(tuple(pair) for pair in book)
            for book in self.pricings))
        for name in ("dci_traces", "dci_middlewares", "dci_providers",
                     "n_dcis", "routings", "policies", "pricings",
                     "seeds", "categories"):
            if not getattr(self, name):
                raise ValueError(f"{name} must be non-empty")
        for n in self.n_dcis:
            if n < 1:
                raise ValueError("every n_dcis entry must be >= 1")

    # ------------------------------------------------------------------
    def dci_specs(self, n: int) -> Tuple[DCISpec, ...]:
        """The first ``n`` DCIs, templates cycled."""
        def cyc(values, i):
            return values[i % len(values)]
        return tuple(
            DCISpec(trace=cyc(self.dci_traces, i),
                    middleware=cyc(self.dci_middlewares, i),
                    provider=cyc(self.dci_providers, i),
                    max_nodes=cyc(self.dci_max_nodes, i)
                    if self.dci_max_nodes else None,
                    price=cyc(self.dci_prices, i)
                    if self.dci_prices else None)
            for i in range(n))

    def n_configs(self) -> int:
        return (len(self.routings) * len(self.policies)
                * len(self.pricings) * len(self.n_dcis)
                * len(self.seeds))

    def expand(self) -> List[ScenarioConfig]:
        """The canonical scenario list (routings outermost, then
        arbitration policies, then price books, then DCI counts, then
        seeds — the aggregation order of the federation and economics
        reports)."""
        cfgs: List[ScenarioConfig] = []
        for routing in self.routings:
            for policy in self.policies:
                for pricing in self.pricings:
                    for n in self.n_dcis:
                        for seed in self.seeds:
                            cfgs.append(ScenarioConfig(
                                dcis=self.dci_specs(n), seed=seed,
                                n_tenants=self.n_tenants,
                                categories=self.categories,
                                strategy=self.strategy,
                                strategy_threshold=self
                                .strategy_threshold,
                                policy=policy, routing=routing,
                                affinity=self.affinity,
                                arrival_rate_per_hour=self
                                .arrival_rate_per_hour,
                                bot_size=self.bot_size,
                                pool_fraction=self.pool_fraction,
                                max_total_workers=self.max_total_workers,
                                max_dci_workers=self.max_dci_workers,
                                deadline_factor=self.deadline_factor,
                                horizon_days=self.horizon_days,
                                history=self.history,
                                admission=self.admission,
                                pricing=pricing))
        return cfgs


AnySweep = Union[SweepSpec, MultiTenantSweepSpec, FederatedSweepSpec]
AnyConfig = Union[ExecutionConfig, MultiTenantConfig, ScenarioConfig]


@dataclass(frozen=True)
class CampaignSpec:
    """A named bundle of sweeps executed as one campaign."""

    name: str
    sweeps: Tuple[AnySweep, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "sweeps", tuple(self.sweeps))
        if not self.name:
            raise ValueError("name must be non-empty")

    def n_configs(self) -> int:
        return sum(s.n_configs() for s in self.sweeps)

    def expand(self) -> List[AnyConfig]:
        """Concatenated expansion, sweep order preserved (duplicates
        across sweeps are kept: the executor dedups by digest)."""
        out: List[AnyConfig] = []
        for sweep in self.sweeps:
            out.extend(sweep.expand())
        return out

    def expand_unique(self) -> List[AnyConfig]:
        """Expansion with exact duplicates removed (first kept)."""
        seen = set()
        out: List[AnyConfig] = []
        for cfg in self.expand():
            if cfg not in seen:
                seen.add(cfg)
                out.append(cfg)
        return out
