"""Content-addressed result store for campaign executions.

Every finished :class:`~repro.experiments.runner.ExecutionResult` /
:class:`~repro.experiments.runner.MultiTenantResult` (plus arbitrary
JSON-serializable payloads, e.g. the EDGI deployment summary) is
archived in a stdlib-SQLite table keyed by a SHA-256 digest of the
canonical JSON form of its configuration, a code-version salt, and an
optional extra-parameters key.  Identical configs therefore simulate
once per store lifetime, across processes and CI runs.

Losslessness is load-bearing: figures regenerated from a warm store
must be byte-identical to a cold run, so payloads round-trip floats via
JSON's shortest-repr encoding (exact for IEEE doubles, including
NaN/inf) and arrays element-wise.  Only ``wall_seconds`` legitimately
differs between two computations of the same config; it is excluded
from the identity comparison used to detect serial/parallel
divergence.

Invalidation is automatic: the digest salt embeds
:func:`code_fingerprint`, a hash of every semantics-bearing source
file (simulator, middleware, core, workload, infra, cloud, deployment,
plus the runner/config modules), so any change to simulation code
makes old entries unreachable — no human has to remember to bump
anything.  :data:`CODE_VERSION` stays as a manual escape hatch for
forced invalidation, ``REPRO_CODE_SALT`` overrides the salt ad hoc,
and :meth:`ResultStore.invalidate` drops entries explicitly.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import time
import warnings
from dataclasses import asdict, dataclass, is_dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.experiments.config import (
    DCISpec,
    ExecutionConfig,
    MultiTenantConfig,
    ScenarioConfig,
)
from repro.experiments.runner import (
    DCIOutcome,
    ExecutionResult,
    FederatedResult,
    FederatedTenantOutcome,
    MultiTenantResult,
    TenantOutcome,
)

__all__ = ["CODE_VERSION", "ResultStore", "StoreStats", "config_digest",
           "current_store", "default_store", "default_store_path",
           "encode_result", "decode_result", "set_cache_enabled",
           "set_default_store"]

#: manual salt component for forced invalidation; day-to-day staleness
#: protection comes from :func:`code_fingerprint` (see module doc)
CODE_VERSION = "campaign-v1"

#: packages (under src/repro/) whose source defines simulation
#: semantics — their bytes feed the digest salt
_SEMANTIC_PACKAGES = ("simulator", "middleware", "core", "history",
                      "economics", "workload", "infra", "cloud",
                      "deployment", "analysis")
_SEMANTIC_FILES = (os.path.join("experiments", "config.py"),
                   os.path.join("experiments", "harness.py"),
                   os.path.join("experiments", "runner.py"))

_fingerprint: Optional[str] = None


def code_fingerprint() -> str:
    """Hash of every semantics-bearing source file (cached per process).

    Two processes running the same simulation code agree on it; any
    edit to simulation code changes it, automatically orphaning stale
    store entries without anyone having to bump :data:`CODE_VERSION`.
    """
    global _fingerprint
    if _fingerprint is None:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        paths = [os.path.join(root, rel) for rel in _SEMANTIC_FILES]
        for pkg in _SEMANTIC_PACKAGES:
            for dirpath, _dirs, files in os.walk(os.path.join(root, pkg)):
                paths.extend(os.path.join(dirpath, name)
                             for name in files if name.endswith(".py"))
        digest = hashlib.sha256()
        for path in sorted(paths):
            digest.update(os.path.relpath(path, root).encode())
            with open(path, "rb") as fh:
                digest.update(fh.read())
        _fingerprint = digest.hexdigest()[:16]
    return _fingerprint

_EXEC_SCALARS = ("makespan", "censored", "n_tasks", "ideal_time",
                 "slowdown", "pct_tasks_in_tail", "pct_time_in_tail",
                 "credits_provisioned", "credits_spent",
                 "workers_launched", "cloud_cpu_hours",
                 "cloud_completions", "events", "wall_seconds")
_MT_SCALARS = ("pool_provisioned", "pool_spent", "workers_peak",
               "events", "wall_seconds")
_FED_SCALARS = _MT_SCALARS


def _jsonable(obj: Any) -> Any:
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.bool_):
        return bool(obj)
    raise TypeError(f"not JSON-serializable: {type(obj).__name__}")


def _canonical(payload: Any) -> str:
    """Key-sorted form — for digests and identity comparisons only."""
    return json.dumps(payload, sort_keys=True, default=_jsonable)


def _payload_json(payload: Any) -> str:
    """Storage form: insertion order preserved, so a decoded payload
    iterates exactly like the freshly computed one (table 5 renders
    rows in dict order — sorting here would make warm runs differ)."""
    return json.dumps(payload, default=_jsonable)


def _code_salt(salt: Optional[str] = None) -> str:
    if salt:
        return salt
    env = os.environ.get("REPRO_CODE_SALT")
    if env:
        return env
    return f"{CODE_VERSION}-{code_fingerprint()}"


def config_digest(key: Any, extra: Optional[Dict[str, Any]] = None,
                  salt: Optional[str] = None) -> str:
    """Stable content digest of a config (or plain-dict key).

    The digest covers every field of the config, the config *type*, the
    code-version salt, and any extra parameters (e.g. middleware-knob
    overrides that live outside the config dataclass) — change any of
    them and the digest changes.
    """
    if is_dataclass(key) and not isinstance(key, type):
        kind, fields = type(key).__name__, asdict(key)
    elif isinstance(key, dict):
        kind, fields = "dict", key
    else:
        raise TypeError(f"unsupported store key: {type(key).__name__}")
    body = _canonical({"kind": kind, "salt": _code_salt(salt),
                       "fields": fields, "extra": extra})
    return hashlib.sha256(body.encode()).hexdigest()


# ---------------------------------------------------------------------------
# payload codecs
# ---------------------------------------------------------------------------
def encode_result(result: Any) -> Tuple[str, str]:
    """(kind, canonical JSON payload) for a storable result."""
    if isinstance(result, ExecutionResult):
        d = {name: getattr(result, name) for name in _EXEC_SCALARS}
        d["config"] = asdict(result.config)
        d["completion_times"] = result.completion_times
        d["tc_grid"] = result.tc_grid
        d["server_stats"] = result.server_stats
        return "execution", _payload_json(d)
    if isinstance(result, FederatedResult):
        d = {name: getattr(result, name) for name in _FED_SCALARS}
        d["config"] = asdict(result.config)
        d["tenants"] = [asdict(t) for t in result.tenants]
        d["dcis"] = [asdict(o) for o in result.dcis]
        return "federated", _payload_json(d)
    if isinstance(result, MultiTenantResult):
        d = {name: getattr(result, name) for name in _MT_SCALARS}
        d["config"] = asdict(result.config)
        d["tenants"] = [asdict(t) for t in result.tenants]
        return "multi_tenant", _payload_json(d)
    return "json", _payload_json(result)


def decode_result(kind: str, payload: str) -> Any:
    d = json.loads(payload)
    if kind == "execution":
        return ExecutionResult(
            config=ExecutionConfig(**d["config"]),
            completion_times=np.asarray(d["completion_times"], dtype=float),
            tc_grid=np.asarray(d["tc_grid"], dtype=float),
            server_stats=d["server_stats"],
            **{name: d[name] for name in _EXEC_SCALARS})
    if kind == "multi_tenant":
        cfg = dict(d["config"])
        cfg["categories"] = tuple(cfg["categories"])
        if cfg.get("arrivals") is not None:
            cfg["arrivals"] = tuple(cfg["arrivals"])
        return MultiTenantResult(
            config=MultiTenantConfig(**cfg),
            tenants=[TenantOutcome(**t) for t in d["tenants"]],
            **{name: d[name] for name in _MT_SCALARS})
    if kind == "federated":
        cfg = dict(d["config"])
        cfg["dcis"] = tuple(DCISpec(**spec) for spec in cfg["dcis"])
        cfg["categories"] = tuple(cfg["categories"])
        if cfg.get("affinity") is not None:
            cfg["affinity"] = tuple(tuple(pair) for pair in cfg["affinity"])
        if cfg.get("arrivals") is not None:
            cfg["arrivals"] = tuple(cfg["arrivals"])
        return FederatedResult(
            config=ScenarioConfig(**cfg),
            tenants=[FederatedTenantOutcome(**t) for t in d["tenants"]],
            dcis=[DCIOutcome(**o) for o in d["dcis"]],
            **{name: d[name] for name in _FED_SCALARS})
    if kind == "json":
        return d
    raise ValueError(f"unknown payload kind {kind!r}")


def comparable_payload(payload: str) -> str:
    """The payload with per-run timing stripped — two computations of
    the same config must agree on this form exactly."""
    d = json.loads(payload)
    if isinstance(d, dict):
        d.pop("wall_seconds", None)
    return _canonical(d)


# ---------------------------------------------------------------------------
@dataclass
class StoreStats:
    """Per-process-lifetime cache accounting for one store handle."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    #: re-puts whose timing-stripped payload disagreed with the stored
    #: one — always a bug (non-deterministic simulation or stale salt)
    conflicts: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def summary(self) -> str:
        text = (f"{self.hits} hits, {self.misses} misses "
                f"({100.0 * self.hit_rate:.0f}% hit rate), "
                f"{self.puts} stored")
        if self.conflicts:
            text += f", {self.conflicts} CONFLICTS"
        return text


class ResultStore:
    """SQLite-backed content-addressed archive of campaign results."""

    _SCHEMA = """
    CREATE TABLE IF NOT EXISTS results (
        digest TEXT PRIMARY KEY,
        kind TEXT NOT NULL,
        label TEXT NOT NULL,
        mode TEXT NOT NULL,
        salt TEXT NOT NULL,
        created_at REAL NOT NULL,
        payload TEXT NOT NULL
    );
    CREATE INDEX IF NOT EXISTS idx_results_label ON results (label);
    """

    def __init__(self, path: Optional[str] = None,
                 salt: Optional[str] = None):
        self.path = path or default_store_path()
        parent = os.path.dirname(self.path)
        if self.path != ":memory:" and parent:
            os.makedirs(parent, exist_ok=True)
        self._salt = _code_salt(salt)
        self._conn = sqlite3.connect(self.path)
        self._conn.executescript(self._SCHEMA)
        self._conn.commit()
        self.stats = StoreStats()

    # ------------------------------------------------------------------
    def digest(self, key: Any, extra: Optional[Dict[str, Any]] = None
               ) -> str:
        return config_digest(key, extra=extra, salt=self._salt)

    def get(self, key: Any, extra: Optional[Dict[str, Any]] = None
            ) -> Optional[Any]:
        """The stored result for a config, or None (counted as hit/miss)."""
        row = self._conn.execute(
            "SELECT kind, payload FROM results WHERE digest = ?",
            (self.digest(key, extra),)).fetchone()
        if row is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return decode_result(*row)

    def contains(self, key: Any,
                 extra: Optional[Dict[str, Any]] = None) -> bool:
        """Presence check that does not touch the hit/miss counters."""
        row = self._conn.execute(
            "SELECT 1 FROM results WHERE digest = ?",
            (self.digest(key, extra),)).fetchone()
        return row is not None

    def put(self, key: Any, result: Any,
            extra: Optional[Dict[str, Any]] = None,
            mode: str = "serial") -> str:
        """Archive one result; returns its digest.

        Re-putting an existing digest keeps the first record but
        verifies the new payload is identical up to timing — a
        serial/parallel (or cross-process) divergence is counted in
        ``stats.conflicts`` and warned about, never silently absorbed.
        """
        digest = self.digest(key, extra)
        kind, payload = encode_result(result)
        label = key.label() if hasattr(key, "label") else kind
        cur = self._conn.execute(
            "INSERT OR IGNORE INTO results "
            "(digest, kind, label, mode, salt, created_at, payload) "
            "VALUES (?, ?, ?, ?, ?, ?, ?)",
            (digest, kind, label, mode, self._salt, time.time(), payload))
        if cur.rowcount == 0:
            (stored,) = self._conn.execute(
                "SELECT payload FROM results WHERE digest = ?",
                (digest,)).fetchone()
            if comparable_payload(stored) != comparable_payload(payload):
                self.stats.conflicts += 1
                warnings.warn(
                    f"store conflict for {label}: recomputed result "
                    f"(mode={mode}) differs from the stored record — "
                    "simulation is non-deterministic or CODE_VERSION "
                    "is stale", RuntimeWarning, stacklevel=2)
        else:
            self.stats.puts += 1
        self._conn.commit()
        return digest

    def mode_of(self, key: Any,
                extra: Optional[Dict[str, Any]] = None) -> Optional[str]:
        """Execution mode ('serial' | 'parallel') the record came from."""
        row = self._conn.execute(
            "SELECT mode FROM results WHERE digest = ?",
            (self.digest(key, extra),)).fetchone()
        return row[0] if row else None

    def invalidate(self, key: Any = None,
                   extra: Optional[Dict[str, Any]] = None) -> int:
        """Drop one entry (or every entry when ``key`` is None)."""
        if key is None:
            cur = self._conn.execute("DELETE FROM results")
        else:
            cur = self._conn.execute(
                "DELETE FROM results WHERE digest = ?",
                (self.digest(key, extra),))
        self._conn.commit()
        return cur.rowcount

    def gc(self, vacuum: bool = True) -> Tuple[int, int]:
        """Drop records whose salt no longer matches this handle's.

        Stale records are unreachable anyway (every lookup digest
        embeds the current salt), so GC only reclaims space — a store
        that survived many code edits (e.g. CI's cached one) otherwise
        accretes dead rows forever.  Returns ``(rows, payload_bytes)``
        reclaimed; ``vacuum`` compacts the database file afterwards so
        the bytes actually return to the filesystem.
        """
        (rows, nbytes) = self._conn.execute(
            "SELECT COUNT(*), COALESCE(SUM(LENGTH(payload)), 0) "
            "FROM results WHERE salt != ?", (self._salt,)).fetchone()
        if rows:
            self._conn.execute("DELETE FROM results WHERE salt != ?",
                               (self._salt,))
            self._conn.commit()
            if vacuum:
                self._conn.execute("VACUUM")
        return int(rows), int(nbytes)

    def breakdown(self) -> Dict[str, Dict[str, int]]:
        """Record counts per payload kind, split current/stale salt."""
        out: Dict[str, Dict[str, int]] = {}
        rows = self._conn.execute(
            "SELECT kind, salt = ?, COUNT(*) FROM results "
            "GROUP BY kind, salt = ? ORDER BY kind",
            (self._salt, self._salt)).fetchall()
        for kind, current, count in rows:
            bucket = out.setdefault(kind, {"current": 0, "stale": 0})
            bucket["current" if current else "stale"] += int(count)
        return out

    def file_bytes(self) -> int:
        """On-disk size of the database (0 for in-memory stores)."""
        if self.path == ":memory:" or not os.path.exists(self.path):
            return 0
        return os.path.getsize(self.path)

    def labels(self) -> List[str]:
        rows = self._conn.execute(
            "SELECT label FROM results ORDER BY label").fetchall()
        return [r[0] for r in rows]

    def __len__(self) -> int:
        (n,) = self._conn.execute("SELECT COUNT(*) FROM results").fetchone()
        return int(n)

    def close(self) -> None:
        self._conn.close()


# ---------------------------------------------------------------------------
# process-wide default store
# ---------------------------------------------------------------------------
_default_store: Optional[ResultStore] = None
_cache_enabled = os.environ.get("REPRO_NO_CACHE", "").lower() \
    in ("", "0", "false")


def default_store_path() -> str:
    """``REPRO_STORE`` or ``<repo>/benchmarks/.campaign_store/results.sqlite``
    (gitignored; CI persists it between runs via actions/cache)."""
    env = os.environ.get("REPRO_STORE")
    if env:
        return env
    root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))))
    return os.path.join(root, "benchmarks", ".campaign_store",
                        "results.sqlite")


def default_store() -> Optional[ResultStore]:
    """The process-wide store (lazily opened), or None when caching is
    off (``REPRO_NO_CACHE=1`` / :func:`set_cache_enabled`)."""
    global _default_store
    if not _cache_enabled:
        return None
    if _default_store is None:
        _default_store = ResultStore(default_store_path())
    return _default_store


def current_store() -> Optional[ResultStore]:
    """The default store if one is already open (never opens one)."""
    return _default_store if _cache_enabled else None


def set_default_store(store: Optional[ResultStore]
                      ) -> Optional[ResultStore]:
    """Swap the process-wide store; returns the previous one."""
    global _default_store
    previous, _default_store = _default_store, store
    return previous


def set_cache_enabled(enabled: bool) -> None:
    global _cache_enabled
    _cache_enabled = enabled
