"""Tick/ETA reporting for long sweeps.

A :class:`ProgressReporter` is fed one :meth:`~ProgressReporter.tick`
per finished config (cache hits fast-forward in bulk) and prints a
single-line status at most every ``min_interval`` seconds, so a
64-tenant contention sweep stays observable without drowning the
terminal.  The clock and stream are injectable for tests.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Optional, TextIO

__all__ = ["ProgressReporter", "format_duration"]


def format_duration(seconds: float) -> str:
    """Compact human duration: 42s, 3m12s, 2h05m."""
    seconds = max(0.0, seconds)
    if seconds < 60.0:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class ProgressReporter:
    """Counts completed work units and reports elapsed/ETA lines."""

    def __init__(self, total: int, label: str = "campaign",
                 stream: Optional[TextIO] = None,
                 min_interval: float = 2.0,
                 clock: Callable[[], float] = time.monotonic):
        if total < 0:
            raise ValueError("total must be >= 0")
        self.total = total
        self.done = 0
        self.label = label
        self._stream = stream if stream is not None else sys.stderr
        self._min_interval = min_interval
        self._clock = clock
        self._t0 = clock()
        self._last_emit: Optional[float] = None

    # ------------------------------------------------------------------
    @property
    def elapsed(self) -> float:
        return self._clock() - self._t0

    def eta(self) -> Optional[float]:
        """Remaining seconds extrapolated from throughput so far."""
        if self.done <= 0 or self.total <= 0:
            return None
        return self.elapsed / self.done * (self.total - self.done)

    def line(self) -> str:
        pct = 100.0 * self.done / self.total if self.total else 100.0
        line = (f"{self.label}: {self.done}/{self.total} ({pct:.0f}%) "
                f"elapsed {format_duration(self.elapsed)}")
        eta = self.eta()
        if eta is not None and self.done < self.total:
            line += f", eta {format_duration(eta)}"
        return line

    def tick(self, n: int = 1) -> None:
        """Advance by ``n`` finished units, emitting when due."""
        self.done += n
        now = self._clock()
        due = (self._last_emit is None
               or now - self._last_emit >= self._min_interval
               or self.done >= self.total)
        if due:
            self._last_emit = now
            print(self.line(), file=self._stream, flush=True)

    def finish(self) -> None:
        """Force a final line (idempotent when already at total)."""
        if self.done < self.total or self._last_emit is None:
            self._last_emit = None
            self.tick(0)
