"""Sharded campaign executor over the content-addressed store.

The executor is the single path every campaign takes:

1. **Dedup + cache probe** — input configs are deduplicated by content
   digest and probed against the store; only misses are simulated.
2. **Sharding** — pending configs are partitioned by trace realization
   ``(trace, seed)`` so each worker process materializes a given
   BE-DCI environment once and replays it for every strategy variant
   (the same locality the in-process LRU trace cache exploits).
3. **Execution** — shards fan out over a ``ProcessPoolExecutor``.  A
   pool that cannot start (``OSError``/``ImportError``) *or breaks
   mid-run* (a worker crash raising ``BrokenProcessPool``) degrades to
   finishing the remaining shards serially with a warning — a campaign
   never dies halfway because one worker did.
4. **Persistence** — every finished shard is committed to the store
   before the next is awaited, so an interrupted campaign resumes with
   100 % hits for completed work.

``run_cached`` is the single-config variant used by report builders
for one-off executions (figure 1, ablations) so those too simulate at
most once per store lifetime.
"""

from __future__ import annotations

import math
import os
import warnings
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.campaign.progress import ProgressReporter
from repro.campaign.store import ResultStore, default_store
from repro.experiments.config import (
    ExecutionConfig,
    MultiTenantConfig,
    ScenarioConfig,
)
from repro.experiments.runner import (
    run_execution,
    run_federated,
    run_multi_tenant,
)

__all__ = ["CampaignExecutor", "default_jobs", "run_cached",
           "set_default_jobs"]

AnyConfig = Union[ExecutionConfig, MultiTenantConfig, ScenarioConfig]

#: below this many pending configs the pool overhead beats the speedup
MIN_PARALLEL_CONFIGS = 4

_default_jobs_override: Optional[int] = None


def set_default_jobs(n: Optional[int]) -> None:
    """Process-wide job-count override (the CLI's ``--jobs`` lands
    here so it reaches campaigns started deep inside report builders)."""
    global _default_jobs_override
    _default_jobs_override = n


def default_jobs() -> int:
    """``set_default_jobs`` override, else ``REPRO_JOBS``, else a
    machine-sized process count."""
    if _default_jobs_override is not None:
        return _default_jobs_override
    env = os.environ.get("REPRO_JOBS")
    if env:
        return max(1, int(env))
    return max(1, min(8, (os.cpu_count() or 2) - 1))


def _run_one(cfg: AnyConfig) -> Any:
    """Dispatch one config to its runner (top-level: pickled by pools)."""
    from repro.deployment.edgi import EDGIConfig, run_edgi
    if isinstance(cfg, MultiTenantConfig):
        return run_multi_tenant(cfg)
    if isinstance(cfg, ScenarioConfig):
        return run_federated(cfg)
    if isinstance(cfg, EDGIConfig):
        return run_edgi(cfg)
    return run_execution(cfg)


def _run_shard(cfgs: List[AnyConfig]) -> List[Any]:
    """Worker entry point: simulate one trace-realization shard."""
    return [_run_one(c) for c in cfgs]


def _shard_key(cfg: AnyConfig):
    if isinstance(cfg, ScenarioConfig):
        # a federation materializes one realization per DCI; group by
        # the seed so paired routing/policy variants share a worker
        return (cfg.dcis[0].trace, cfg.seed)
    if not hasattr(cfg, "trace"):  # deployment presets (EDGIConfig)
        return (type(cfg).__name__, cfg.seed)
    return (cfg.trace, cfg.seed)


class CampaignExecutor:
    """Runs batches of configs through the store + process pool.

    ``store`` is the literal ``"default"`` (the process-wide store, or
    no caching when that is disabled), an explicit
    :class:`~repro.campaign.store.ResultStore`, or ``None`` to bypass
    caching entirely.
    """

    def __init__(self, store: Union[ResultStore, None, str] = "default",
                 n_jobs: Optional[int] = None,
                 progress: Optional[ProgressReporter] = None):
        self.store = default_store() if store == "default" else store
        self.n_jobs = default_jobs() if n_jobs is None else n_jobs
        self.progress = progress

    # ------------------------------------------------------------------
    def run(self, configs: Sequence[AnyConfig]) -> List[Any]:
        """Execute every config (hits from the store, misses simulated)
        and return results in input order."""
        configs = list(configs)
        by_digest: Dict[Any, Any] = {}
        keys: List[Any] = []          # per-input identity key
        pending: "OrderedDict[Any, AnyConfig]" = OrderedDict()
        for cfg in configs:
            key = self.store.digest(cfg) if self.store is not None else cfg
            keys.append(key)
            if key in by_digest or key in pending:
                continue
            hit = self.store.get(cfg) if self.store is not None else None
            if hit is not None:
                by_digest[key] = hit
            else:
                pending[key] = cfg
        if self.progress is not None:
            self.progress.total = len(by_digest) + len(pending)
            if by_digest:
                self.progress.tick(len(by_digest))  # fast-forward hits

        if pending:
            self._execute(pending, by_digest)
            if self.progress is not None:
                self.progress.finish()
        return [by_digest[k] for k in keys]

    # ------------------------------------------------------------------
    def _record(self, key: Any, cfg: AnyConfig, result: Any,
                mode: str, by_digest: Dict[Any, Any]) -> None:
        by_digest[key] = result
        if self.store is not None:
            self.store.put(cfg, result, mode=mode)
        if self.progress is not None:
            self.progress.tick()

    def _run_serial(self, items, by_digest: Dict[Any, Any]) -> None:
        for key, cfg in items:
            self._record(key, cfg, _run_one(cfg), "serial", by_digest)

    def _execute(self, pending: "OrderedDict[Any, AnyConfig]",
                 by_digest: Dict[Any, Any]) -> None:
        if self.n_jobs <= 1 or len(pending) < MIN_PARALLEL_CONFIGS:
            self._run_serial(pending.items(), by_digest)
            return

        # shard by trace realization so a worker materializes each
        # environment once; shard order follows first appearance
        groups: "OrderedDict[Any, List[Any]]" = OrderedDict()
        for key, cfg in pending.items():
            groups.setdefault(_shard_key(cfg), []).append((key, cfg))
        # split oversized realizations into chunks so parallelism is
        # never capped by the number of distinct (trace, seed) pairs
        # (a contention sweep is many configs over very few traces)
        chunk = max(1, math.ceil(len(pending) / (self.n_jobs * 4)))
        shards: List[List[Any]] = []
        for group in groups.values():
            for i in range(0, len(group), chunk):
                shards.append(group[i:i + chunk])

        broken = False
        pool = None
        try:
            from concurrent.futures import (
                BrokenExecutor,
                ProcessPoolExecutor,
                as_completed,
            )
            pool = ProcessPoolExecutor(max_workers=self.n_jobs)
        except (OSError, ImportError):  # pragma: no cover - env dependent
            broken = True
        if pool is not None:
            with pool:
                futures = {}
                try:
                    for shard in shards:
                        futures[pool.submit(
                            _run_shard, [cfg for _, cfg in shard])] = shard
                except (OSError, BrokenExecutor):
                    # worker spawn failed or the pool broke at submit
                    # time; drain whatever made it in
                    broken = True  # pragma: no cover - env dependent
                for fut in as_completed(futures):
                    try:
                        results = fut.result()
                    except BrokenExecutor:
                        # a worker died (OOM, segfault, kill); keep
                        # draining so already-finished shards land
                        broken = True
                        continue
                    # NOTE: deliberately outside any except — a store
                    # or progress failure here is our bug and must
                    # surface, not masquerade as a pool break
                    for (key, cfg), res in zip(futures[fut], results):
                        self._record(key, cfg, res, "parallel", by_digest)
        if broken:
            remaining = [(k, c) for k, c in pending.items()
                         if k not in by_digest]
            if remaining:
                warnings.warn(
                    f"campaign worker pool unavailable or broke mid-run; "
                    f"finishing {len(remaining)} remaining configs "
                    f"serially", RuntimeWarning, stacklevel=2)
                self._run_serial(remaining, by_digest)


# ---------------------------------------------------------------------------
def run_cached(key: Any, compute: Optional[Callable[[], Any]] = None,
               extra: Optional[Dict[str, Any]] = None,
               store: Union[ResultStore, None, str] = "default") -> Any:
    """One execution through the store.

    ``key`` is an :class:`ExecutionConfig` / :class:`MultiTenantConfig`
    (dispatched to its runner) or any plain dict identifying a custom
    computation, in which case ``compute`` must be given.  ``extra``
    folds parameters that live outside the config (e.g. middleware-knob
    overrides) into the digest.
    """
    if compute is None:
        if isinstance(key, dict):
            raise TypeError("dict keys require an explicit compute()")
        compute = lambda: _run_one(key)  # noqa: E731
    resolved = default_store() if store == "default" else store
    if resolved is None:
        return compute()
    result = resolved.get(key, extra=extra)
    if result is None:
        result = compute()
        resolved.put(key, result, extra=extra, mode="serial")
    return result
