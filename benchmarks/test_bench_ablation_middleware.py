"""Ablation A3 — middleware timeout knobs."""

from repro.experiments import figures


def test_ablation_middleware(run_report, scale):
    run_report(figures.ablation_middleware_report, scale)
