"""Ablation A1 — trigger threshold sweep."""

from repro.experiments import figures


def test_ablation_threshold(run_report, scale):
    run_report(figures.ablation_threshold_report, scale)
