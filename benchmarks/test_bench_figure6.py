"""Figure 6 — completion times with/without SpeQuloS."""

from repro.experiments import figures


def test_figure6(run_report, scale):
    run_report(figures.figure6_report, scale)
