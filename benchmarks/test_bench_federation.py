"""Federation sweep — slowdown & pool usage vs DCI count and routing."""

import numpy as np

from repro.experiments import figures, run_campaign


def test_federation(run_report, scale):
    run_report(figures.federation_report)
    # the ISSUE acceptance criterion, answered from the store the
    # report just warmed: on the reference two-DCI scenario,
    # least_loaded routing beats round_robin on the max/min per-tenant
    # slowdown spread
    sweep = figures.federation_sweep(scale)
    cfgs = [c for c in sweep.expand() if len(c.dcis) == 2]
    by_routing = {}
    for cfg, res in zip(cfgs, run_campaign(cfgs)):
        by_routing.setdefault(cfg.routing, []).append(res.slowdown_spread)
    assert float(np.mean(by_routing["least_loaded"])) < \
        float(np.mean(by_routing["round_robin"]))
