"""Figure 7 — execution stability repartitions."""

from repro.experiments import figures


def test_figure7(run_report, scale):
    run_report(figures.figure7_report, scale)
