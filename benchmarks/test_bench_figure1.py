"""Figure 1 — example BoT execution profile with tail."""

from repro.experiments import figures


def test_figure1(run_report, scale):
    run_report(figures.figure1_report, scale)
