"""Table 1 — tail task/time fractions per DCI class."""

from repro.experiments import figures


def test_table1(run_report, scale):
    run_report(figures.table1_report, scale)
