"""Figure 5 — credit consumption per strategy combo."""

from repro.experiments import figures


def test_figure5(run_report, scale):
    run_report(figures.figure5_report, scale)
