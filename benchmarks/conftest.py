"""Shared benchmark fixtures.

Each bench regenerates one table/figure of the paper: it runs the
needed campaign once (``benchmark.pedantic(rounds=1)`` — these are
simulation campaigns, not microbenchmarks), prints the paper-style
table, and writes it under ``benchmarks/results/`` for EXPERIMENTS.md.

Campaign size is controlled by ``REPRO_SCALE`` (quick | full); the
campaign process count by ``REPRO_JOBS`` (threaded through
:func:`repro.campaign.executor.default_jobs` into every
``run_campaign`` fan-out).  All campaigns run through the
content-addressed store under ``benchmarks/.campaign_store/`` (CI
persists it between runs), so a warm re-run regenerates every figure
without a single new simulation; the terminal summary prints the
store's hit/miss stats.

Every bench is marked ``slow`` at collection: regenerating the paper's
figures dominates the suite's runtime, so the fast developer lane
(``pytest -m "not slow"``, see ROADMAP.md) skips this directory.
"""

import pathlib

import pytest

from repro.experiments.config import get_scale

_BENCH_DIR = pathlib.Path(__file__).parent


def pytest_collection_modifyitems(items):
    # the hook sees the whole session's items; only mark this directory
    for item in items:
        if _BENCH_DIR in pathlib.Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.slow)


def pytest_terminal_summary(terminalreporter):
    """Surface campaign-store effectiveness (CI greps these lines)."""
    import json

    from repro.campaign.executor import default_jobs
    from repro.campaign.store import current_store
    from repro.experiments.harness import TRACE_CACHE
    from repro.experiments.trace_store import default_trace_store

    store = current_store()
    if store is not None and store.stats.lookups:
        terminalreporter.write_line(
            f"campaign store: {store.stats.summary()}, "
            f"{len(store)} records, jobs={default_jobs()} — {store.path}")
    # the two-tier trace cache: L1 LRU counters (with disk promotions)
    # next to the shared on-disk store's own accounting
    if TRACE_CACHE.hits or TRACE_CACHE.misses:
        line = f"trace cache: {TRACE_CACHE.summary()}"
        traces = default_trace_store()
        if traces is not None:
            line += f" — store: {traces.summary()}"
        terminalreporter.write_line(line)
    # engine scale sweep (latest record written by test_bench_engine)
    bench_json = _BENCH_DIR / "results" / "BENCH_engine.json"
    if bench_json.exists():
        record = json.loads(bench_json.read_text())
        sweep = record.get("scale_sweep")
        if sweep:
            terminalreporter.write_line("engine scale sweep:")
            terminalreporter.write_line(
                f"  {'nodes':>8}  {'events':>10}  {'events/s':>10}"
                f"  {'wall s':>8}  {'peak RSS MB':>11}")
            for point in sweep:
                terminalreporter.write_line(
                    f"  {point['nodes']:>8,}  {point['events']:>10,}"
                    f"  {point['events_per_second']:>10,.0f}"
                    f"  {point['wall_seconds']:>8.2f}"
                    f"  {point['peak_rss_kb'] / 1024:>11,.0f}")
        # Algorithm 2 tick cost of the profiled 10^5-node run (PR 9)
        sched = record.get("scheduler")
        if sched:
            terminalreporter.write_line(
                f"scheduler tick (10^5 profile): {sched['ticks']:,} "
                f"ticks at {sched['mean_tick_us']:,.0f}us, "
                f"{sched['charges']:,} charges "
                f"({sched['charges_per_second']:,.0f}/s), "
                f"{sched['static_rate_hits']:,} static-rate hits, "
                f"{sched['scalar_fallbacks']} scalar fallbacks, "
                f"{sched['profile_share']:.1%} of run wall")
        # dispatch-plane cost of the profiled 10^5-node run (PR 10)
        disp = record.get("dispatch")
        if disp:
            terminalreporter.write_line(
                f"dispatch plane (10^5 profile): {disp['acquires']:,} "
                f"acquires in {disp['bulk_batches']:,} bulk batches, "
                f"{disp['bulk_passes']:,}/{disp['dispatches']:,} bulk "
                f"passes at {disp['mean_pairing_us']:,.0f}us pairing, "
                f"{disp['scalar_fallbacks']} scalar fallbacks, "
                f"{disp['ghost_compactions']} ghost compactions, "
                f"{disp['profile_share']:.1%} of run wall")
    # world-assembly skeleton cache (per-process; filled by the sweep)
    from repro.experiments.harness import ASSEMBLY_CACHE
    if ASSEMBLY_CACHE.hits or ASSEMBLY_CACHE.misses:
        terminalreporter.write_line(
            f"assembly cache: {ASSEMBLY_CACHE.summary()}")


@pytest.fixture(scope="session")
def scale():
    return get_scale()


@pytest.fixture
def run_report(benchmark):
    """Run a report builder once under pytest-benchmark, print + save."""

    def _run(builder, *args, **kwargs):
        report = benchmark.pedantic(
            lambda: builder(*args, **kwargs), rounds=1, iterations=1)
        path = report.save()
        print()
        print(report.render())
        print(f"[saved to {path}]")
        return report

    return _run
