"""Shared benchmark fixtures.

Each bench regenerates one table/figure of the paper: it runs the
needed campaign once (``benchmark.pedantic(rounds=1)`` — these are
simulation campaigns, not microbenchmarks), prints the paper-style
table, and writes it under ``benchmarks/results/`` for EXPERIMENTS.md.

Campaign size is controlled by ``REPRO_SCALE`` (quick | full).

Every bench is marked ``slow`` at collection: regenerating the paper's
figures dominates the suite's runtime, so the fast developer lane
(``pytest -m "not slow"``, see ROADMAP.md) skips this directory.
"""

import pathlib

import pytest

from repro.experiments.config import get_scale

_BENCH_DIR = pathlib.Path(__file__).parent


def pytest_collection_modifyitems(items):
    # the hook sees the whole session's items; only mark this directory
    for item in items:
        if _BENCH_DIR in pathlib.Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def scale():
    return get_scale()


@pytest.fixture
def run_report(benchmark):
    """Run a report builder once under pytest-benchmark, print + save."""

    def _run(builder, *args, **kwargs):
        report = benchmark.pedantic(
            lambda: builder(*args, **kwargs), rounds=1, iterations=1)
        path = report.save()
        print()
        print(report.render())
        print(f"[saved to {path}]")
        return report

    return _run
