"""Engine hot-path benchmark — events/sec, peak RSS, trace-store warm-up.

Emits ``benchmarks/results/BENCH_engine.json``, the machine-readable
perf record CI uploads as an artifact: event-loop throughput of one
full seti execution, the process's peak RSS, and the cold-vs-warm wall
time of materializing a seti-class (10^4-node) trace realization
through the shared on-disk :class:`~repro.experiments.trace_store.
TraceStore`.  The warm path is what every ``CampaignExecutor`` shard
after the first pays, so the ISSUE's acceptance bar — warm at least
5x faster than cold — is asserted here, not just recorded.
"""

import json
import os
import resource
import time

from repro.experiments import ExecutionConfig, run_execution
from repro.experiments import trace_store as ts
from repro.experiments.harness import TraceCache
from repro.experiments.report import results_dir
from repro.experiments.trace_store import TraceStore

# seti-class realization: 10^4 hosts over a few days is the shape the
# paper's biggest campaigns materialize over and over across shards
SETI_CAP = 10_000
SETI_HORIZON = 3 * 86400.0
WARM_SHARDS = 4


def _peak_rss_kb() -> int:
    """Linux ru_maxrss is KB (no psutil in the image)."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _materialize_fresh(seed: int) -> float:
    """Wall seconds for a fresh L1 (new shard) to realize the trace."""
    cache = TraceCache()
    t0 = time.perf_counter()
    nodes = cache.materialize("seti", seed, SETI_CAP, SETI_HORIZON)
    wall = time.perf_counter() - t0
    assert len(nodes) == SETI_CAP
    return wall


def test_engine_throughput_and_trace_store(tmp_path, scale):
    # --- event-loop throughput over one full execution ----------------
    cfg = ExecutionConfig(trace="seti", middleware="boinc",
                          category="SMALL", seed=1)
    res = run_execution(cfg)
    events_per_sec = res.events / res.wall_seconds

    # --- cold vs warm trace materialization through the store ---------
    # a fresh store in tmp so the timings are genuinely cold; each warm
    # round models another executor shard (fresh L1, shared L2)
    store = TraceStore(root=str(tmp_path / "traces"))
    prev = ts.set_default_trace_store(store)
    try:
        cold = _materialize_fresh(seed=42)
        warm_walls = [_materialize_fresh(seed=42)
                      for _ in range(WARM_SHARDS)]
        assert store.saves == 1
        assert store.loads == WARM_SHARDS
        store_bytes = store.file_bytes()
    finally:
        ts.set_default_trace_store(prev)
    warm = sum(warm_walls) / len(warm_walls)
    speedup = cold / warm

    payload = {
        "bench": "engine",
        "scale": scale.name,
        "events": res.events,
        "run_wall_seconds": round(res.wall_seconds, 3),
        "events_per_second": round(events_per_sec, 1),
        "peak_rss_kb": _peak_rss_kb(),
        "trace_store": {
            "nodes": SETI_CAP,
            "horizon_seconds": SETI_HORIZON,
            "cold_seconds": round(cold, 4),
            "warm_seconds_mean": round(warm, 4),
            "warm_seconds": [round(w, 4) for w in warm_walls],
            "speedup": round(speedup, 1),
            "store_bytes": store_bytes,
        },
    }
    path = os.path.join(results_dir(), "BENCH_engine.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"\n[bench json saved to {path}]")
    print(f"[engine] {events_per_sec:,.0f} events/s over {res.events:,} "
          f"events; trace store warm-up {speedup:.1f}x "
          f"(cold {cold:.2f}s, warm {warm * 1e3:.0f}ms)")

    # the ISSUE acceptance criterion: a warm store makes repeated
    # materialization of the seti-class trace at least 5x faster
    assert speedup >= 5.0, (
        f"warm trace store only {speedup:.1f}x faster than cold "
        f"(cold {cold:.3f}s, warm {warm:.3f}s)")
