"""Engine hot-path benchmark — events/sec, scale sweep, trace store.

Emits ``benchmarks/results/BENCH_engine.json``, the machine-readable
perf record CI uploads as an artifact:

* event-loop throughput of the 10^4-node seti reference execution,
  cold and warm, gated against the recorded PR 6 seed (a warm
  regression below the seed fails the bench);
* a 10^3 / 10^4 / 10^5-node federated scale sweep (events/sec and
  peak RSS per point) — the ROADMAP's million-host trajectory;
* the cProfile top-30 of the 10^5-node scenario, saved next to the
  JSON (CI uploads it as an artifact in the slow lane);
* the cold-vs-warm wall time of materializing a seti-class trace
  realization through the shared on-disk :class:`~repro.experiments.
  trace_store.TraceStore` (warm must stay at least 5x faster).
"""

import cProfile
import gc
import io
import json
import os
import pstats
import resource
import time

from repro.core.scheduler import SCHED_TELEMETRY, reset_sched_telemetry
from repro.economics.billing import BILLING_STATS, reset_billing_stats
from repro.economics.pricing import RATE_STATS, reset_rate_stats
from repro.infra.pool import POOL_STATS, reset_pool_stats
from repro.middleware.base import DISPATCH_STATS, reset_dispatch_stats
from repro.experiments import (
    DCISpec,
    ExecutionConfig,
    ScenarioConfig,
    run_execution,
    run_federated,
)
from repro.experiments import trace_store as ts
from repro.experiments.harness import TraceCache
from repro.experiments.report import results_dir
from repro.experiments.trace_store import TraceStore

# seti-class realization: 10^4 hosts over a few days is the shape the
# paper's biggest campaigns materialize over and over across shards
SETI_CAP = 10_000
SETI_HORIZON = 3 * 86400.0
WARM_SHARDS = 4

#: events/sec of the 10^4-node seti/boinc/SMALL execution recorded at
#: the PR 6 seed (benchmarks/results/BENCH_engine.json@PR6).  The hard
#: gate was "no regression versus the recorded seed" through PR 8; the
#: columnar billing ledger (PR 9) raised it to 1.25x the seed.
PR6_EVENTS_PER_SEC = 36_577.9

#: warm throughput hard gate, as a multiple of the recorded PR 6 seed.
#: PR 9 vectorized Algorithm 2 (columnar ledger + static-rate fast
#: path + O(1) counters), so a regression back under 1.25x the seed
#: means the fast path silently disengaged.
GATE_MULTIPLIER = 1.25

#: warm reference-execution repetitions; the best repetition is the
#: throughput record (single-shot walls on shared CI boxes are noisy)
WARM_ROUNDS = 3

#: federated scale sweep, ascending so ru_maxrss (a process-lifetime
#: high-water mark) approximates a per-point peak
SCALE_NODES = (1_000, 10_000, 100_000)

#: events/sec of the 10^5-node sweep point recorded at the PR 8 seed
#: (BENCH_engine.json@PR8).  PR 10 vectorized the dispatch plane
#: (columnar pool promotion, bulk acquire + pairing, assembly-skeleton
#: cache), so the point must now clear SWEEP_GATE_MULTIPLIER x this.
PR8_SWEEP_100K_EPS = 6_631.8
SWEEP_GATE_MULTIPLIER = 1.3

#: cumulative-profile ceiling for the dispatch plane's *pairing
#: machinery*: base._dispatch + pool.acquire, minus the per-assignment
#: `_execute` payload (which runs once per pairing no matter which
#: dispatch strategy produced it), must stay under this share of the
#: profiled 10^5-node run wall
DISPATCH_SHARE_CEILING = 0.25

_JSON_PATH = os.path.join(results_dir(), "BENCH_engine.json")
_PROFILE_PATH = os.path.join(results_dir(), "PROFILE_engine_100k.txt")


def _peak_rss_kb() -> int:
    """Linux ru_maxrss is KB (no psutil in the image)."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _merge_payload(section: dict) -> None:
    """Read-modify-write the bench JSON (tests fill it in sequence)."""
    payload = {"bench": "engine"}
    if os.path.exists(_JSON_PATH):
        with open(_JSON_PATH) as fh:
            payload = json.load(fh)
    payload.update(section)
    with open(_JSON_PATH, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")


def _materialize_fresh(seed: int) -> float:
    """Wall seconds for a fresh L1 (new shard) to realize the trace."""
    cache = TraceCache()
    t0 = time.perf_counter()
    nodes = cache.materialize("seti", seed, SETI_CAP, SETI_HORIZON)
    wall = time.perf_counter() - t0
    assert len(nodes) == SETI_CAP
    return wall


def _federated_config(total_nodes: int) -> ScenarioConfig:
    """A two-DCI seti federation with ``total_nodes`` hosts overall.

    ``DCISpec.max_nodes`` overrides the automatic node cap, so the
    10^5 point materializes 2 x 50 000 hosts of the seti trace (its
    natural size is 86 631 hosts — no synthetic padding needed).
    """
    per_dci = total_nodes // 2
    return ScenarioConfig(
        dcis=(DCISpec(trace="seti", middleware="boinc",
                      max_nodes=per_dci),
              DCISpec(trace="seti", middleware="xwhep",
                      max_nodes=per_dci)),
        seed=11, n_tenants=4, categories=("SMALL",), bot_size=250,
        horizon_days=3.0)


def test_engine_throughput_and_trace_store(tmp_path, scale):
    # --- event-loop throughput over one full execution ----------------
    cfg = ExecutionConfig(trace="seti", middleware="boinc",
                          category="SMALL", seed=1)
    res_cold = run_execution(cfg)   # pays trace realization / L1 fill
    cold_eps = res_cold.events / res_cold.wall_seconds
    warm_walls = []
    for _ in range(WARM_ROUNDS):
        res = run_execution(cfg)
        assert res.events == res_cold.events  # same seed, same trajectory
        warm_walls.append(res.wall_seconds)
    warm_wall = min(warm_walls)
    warm_eps = res_cold.events / warm_wall
    speedup_vs_seed = warm_eps / PR6_EVENTS_PER_SEC

    # --- cold vs warm trace materialization through the store ---------
    # a fresh store in tmp so the timings are genuinely cold; each warm
    # round models another executor shard (fresh L1, shared L2)
    store = TraceStore(root=str(tmp_path / "traces"))
    prev = ts.set_default_trace_store(store)
    try:
        cold = _materialize_fresh(seed=42)
        store_warm_walls = [_materialize_fresh(seed=42)
                            for _ in range(WARM_SHARDS)]
        assert store.saves == 1
        assert store.loads == WARM_SHARDS
        store_bytes = store.file_bytes()
    finally:
        ts.set_default_trace_store(prev)
    store_warm = sum(store_warm_walls) / len(store_warm_walls)
    store_speedup = cold / store_warm

    _merge_payload({
        "scale": scale.name,
        "events": res_cold.events,
        "run_wall_seconds": round(warm_wall, 3),
        "events_per_second": round(warm_eps, 1),
        "cold_run_wall_seconds": round(res_cold.wall_seconds, 3),
        "cold_events_per_second": round(cold_eps, 1),
        "seed_events_per_second": PR6_EVENTS_PER_SEC,
        "speedup_vs_seed": round(speedup_vs_seed, 2),
        "peak_rss_kb": _peak_rss_kb(),
        "trace_store": {
            "nodes": SETI_CAP,
            "horizon_seconds": SETI_HORIZON,
            "cold_seconds": round(cold, 4),
            "warm_seconds_mean": round(store_warm, 4),
            "warm_seconds": [round(w, 4) for w in store_warm_walls],
            "speedup": round(store_speedup, 1),
            "store_bytes": store_bytes,
        },
    })
    print(f"\n[bench json saved to {_JSON_PATH}]")
    print(f"[engine] warm {warm_eps:,.0f} events/s over "
          f"{res_cold.events:,} events ({speedup_vs_seed:.2f}x the "
          f"recorded seed, cold {cold_eps:,.0f}); trace store warm-up "
          f"{store_speedup:.1f}x (cold {cold:.2f}s, "
          f"warm {store_warm * 1e3:.0f}ms)")

    # regression gates: warm events/sec must clear GATE_MULTIPLIER x
    # the PR 6 seed, and a warm trace store must stay >= 5x cold
    gate = GATE_MULTIPLIER * PR6_EVENTS_PER_SEC
    assert warm_eps >= gate, (
        f"warm throughput regressed below {GATE_MULTIPLIER}x the "
        f"recorded seed: {warm_eps:,.0f} < {gate:,.0f} events/s")
    assert store_speedup >= 5.0, (
        f"warm trace store only {store_speedup:.1f}x faster than cold "
        f"(cold {cold:.3f}s, warm {store_warm:.3f}s)")


def test_engine_scale_sweep_and_profile(scale):
    """10^3..10^5-node federated sweep + cProfile of the 10^5 point.

    Runs with automatic GC off (collect first, re-enable after): gen-2
    pause time scales with the host process's live heap — a full tier-1
    session holds thousands of collected test items — and cProfile
    attributes each pause to whichever allocation triggered it, which
    would swamp the per-tick share this test gates on.
    """
    gc.collect()
    gc.disable()
    try:
        _scale_sweep_and_profile(scale)
    finally:
        gc.enable()


def _scale_sweep_and_profile(scale):
    sweep = []
    for total in SCALE_NODES:
        cfg = _federated_config(total)
        t0 = time.perf_counter()
        res = run_federated(cfg)
        wall = time.perf_counter() - t0
        sweep.append({
            "nodes": total,
            "events": res.events,
            "wall_seconds": round(res.wall_seconds, 3),
            "events_per_second": round(res.events / res.wall_seconds, 1),
            "peak_rss_kb": _peak_rss_kb(),
        })
        print(f"[scale] {total:>7,} nodes: {res.events:,} events, "
              f"{res.events / res.wall_seconds:,.0f} events/s "
              f"(outer wall {wall:.2f}s, rss {_peak_rss_kb():,} KB)")

    # profile the 10^5-node scenario end to end (world assembly + run),
    # with the scheduler/billing telemetry zeroed so the counters below
    # describe exactly this run
    reset_sched_telemetry()
    reset_billing_stats()
    reset_rate_stats()
    reset_pool_stats()
    reset_dispatch_stats()
    profiler = cProfile.Profile()
    profiler.enable()
    res = run_federated(_federated_config(SCALE_NODES[-1]))
    profiler.disable()
    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.sort_stats("cumulative").print_stats(30)
    top30 = buf.getvalue()
    with open(_PROFILE_PATH, "w") as fh:
        fh.write(f"# cProfile top-30 (cumulative) — "
                 f"{SCALE_NODES[-1]:,}-node federated scenario\n")
        fh.write(top30)
    print(f"[profile saved to {_PROFILE_PATH}]")

    # Algorithm 2 tick cost: core/scheduler.py's cumulative share of
    # the profiled run wall (the ROADMAP contract keeps it under 20%)
    tick_cum = sum(
        ct for (fname, _lineno, func), (_cc, _nc, _tt, ct, _callers)
        in stats.stats.items()
        if func == "_tick" and fname.replace(os.sep, "/").endswith(
            "core/scheduler.py"))
    sched_share = tick_cum / res.wall_seconds
    ticks = SCHED_TELEMETRY["ticks"]
    charges = BILLING_STATS["charges"]
    scheduler_section = {
        "ticks": ticks,
        "tick_wall_seconds": round(SCHED_TELEMETRY["tick_wall"], 3),
        "mean_tick_us": round(
            SCHED_TELEMETRY["tick_wall"] / max(1, ticks) * 1e6, 1),
        "scalar_fallbacks": SCHED_TELEMETRY["scalar_fallbacks"],
        "charges": charges,
        "charge_batches": BILLING_STATS["batches"],
        "charges_per_second": round(charges / res.wall_seconds, 1),
        "static_rate_hits": RATE_STATS["hits"],
        "rate_resolves": RATE_STATS["resolves"],
        "profile_share": round(sched_share, 4),
    }
    print(f"[scheduler] {ticks:,} ticks, "
          f"{scheduler_section['mean_tick_us']:.0f}us/tick, "
          f"{charges:,} charges "
          f"({scheduler_section['charges_per_second']:,.0f}/s), "
          f"{RATE_STATS['hits']:,} static-rate cache hits, "
          f"{SCHED_TELEMETRY['scalar_fallbacks']} scalar fallbacks, "
          f"{sched_share:.1%} of the profiled run wall")

    # dispatch-plane cost: the fraction of the profiled wall (the
    # "in X seconds" figure at the top of PROFILE_engine_100k.txt —
    # pstats' total_tt) spent inside base._dispatch or pool.acquire.
    # Two adjustments keep the number an honest measure of *pairing
    # machinery* rather than assignment volume:
    #   - acquire reached *through* _dispatch (the scalar reference
    #     calls it) is already inside _dispatch's cumulative time, so
    #     only acquire's time under other callers adds — summing both
    #     cumtimes outright would double-count the nested subtree and
    #     could push a "share" past 100%;
    #   - the per-assignment `_execute` payload (replica bookkeeping,
    #     timeout + progress event scheduling) runs once per pairing
    #     whether the scalar loop or the bulk pass produced it, so its
    #     subtree is subtracted back out: a model that assigns more
    #     tasks should not read as a slower dispatcher.
    def _profile_key(name, tail):
        for key in stats.stats:
            fname, _lineno, func = key
            if func == name and fname.replace(os.sep, "/").endswith(tail):
                return key
        return None

    disp_key = _profile_key("_dispatch", "middleware/base.py")
    scalar_key = _profile_key("_dispatch_scalar", "middleware/base.py")
    acq_key = _profile_key("acquire", "infra/pool.py")
    dispatch_cum = stats.stats[disp_key][3] if disp_key else 0.0
    if acq_key is not None:
        _cc, _nc, _tt, acq_ct, acq_callers = stats.stats[acq_key]
        nested = sum(ct for caller, (_c, _n, _t, ct)
                     in acq_callers.items()
                     if caller in (disp_key, scalar_key))
        dispatch_cum += max(0.0, acq_ct - nested)
    for key, (_cc, _nc, _tt, _ct, callers) in stats.stats.items():
        if key[2] != "_execute" or "middleware" not in key[0]:
            continue
        dispatch_cum -= sum(ct for caller, (_c, _n, _t, ct)
                            in callers.items()
                            if caller in (disp_key, scalar_key))
    dispatch_cum = max(0.0, dispatch_cum)
    dispatch_share = dispatch_cum / stats.total_tt
    bulk = DISPATCH_STATS["bulk"]
    dispatch_section = {
        "acquires": POOL_STATS["acquires"],
        "bulk_batches": POOL_STATS["bulk_batches"],
        "dispatches": DISPATCH_STATS["dispatches"],
        "bulk_passes": bulk,
        "scalar_fallbacks": DISPATCH_STATS["scalar_fallbacks"],
        "mean_pairing_us": round(
            DISPATCH_STATS["pairing_wall"] / max(1, bulk) * 1e6, 1),
        "ghost_compactions": POOL_STATS["ghost_compactions"],
        "profile_share": round(dispatch_share, 4),
    }
    print(f"[dispatch] {POOL_STATS['acquires']:,} acquires in "
          f"{POOL_STATS['bulk_batches']:,} bulk batches, "
          f"{bulk:,}/{DISPATCH_STATS['dispatches']:,} bulk passes "
          f"({dispatch_section['mean_pairing_us']:.0f}us pairing, "
          f"{DISPATCH_STATS['scalar_fallbacks']} scalar fallbacks), "
          f"{POOL_STATS['ghost_compactions']} ghost compactions, "
          f"pairing share {dispatch_share:.1%} of the profiled run wall")

    _merge_payload({
        "scale_sweep": sweep,
        "profile_100k": {
            "nodes": SCALE_NODES[-1],
            "events": res.events,
            "profiled_wall_seconds": round(res.wall_seconds, 3),
            "top30_path": os.path.relpath(_PROFILE_PATH,
                                          start=os.getcwd()),
        },
        "scheduler": scheduler_section,
        "dispatch": dispatch_section,
    })

    # the tick loop must stay a minor profile line: Algorithm 2's scan
    # is columnar now, so a large share of run wall means the
    # O(1)/vectorized paths stopped engaging.  The ceiling moved from
    # 20% to 25% in PR 10: vectorizing the dispatch plane cut the whole
    # profiled 10^5-node wall by ~7x while the absolute tick cost stayed
    # flat (~190us), so the unchanged scheduler reads as a larger
    # *fraction* — the absolute guard below is the real regression trap.
    assert sched_share < 0.25, (
        f"core/scheduler.py _tick is {sched_share:.1%} of the profiled "
        f"10^5-node run wall (contract: < 25%)")
    assert scheduler_section["mean_tick_us"] < 500, (
        f"mean scheduler tick cost regressed to "
        f"{scheduler_section['mean_tick_us']:.0f}us "
        f"(contract: < 500us at the 10^5-node point)")

    # PR 10 gate: the vectorized dispatch plane must hold its win on
    # the 10^5 point, and the pairing machinery must stay a minor
    # profile line (regression = the bulk path silently disengaged)
    sweep_gate = SWEEP_GATE_MULTIPLIER * PR8_SWEEP_100K_EPS
    eps_100k = sweep[-1]["events_per_second"]
    assert eps_100k >= sweep_gate, (
        f"10^5-node sweep point regressed below "
        f"{SWEEP_GATE_MULTIPLIER}x the recorded PR 8 seed: "
        f"{eps_100k:,.0f} < {sweep_gate:,.0f} events/s")
    assert dispatch_share < DISPATCH_SHARE_CEILING, (
        f"base._dispatch + pool.acquire pairing machinery (execute "
        f"payload excluded) is {dispatch_share:.1%} of the profiled "
        f"10^5-node run wall "
        f"(contract: < {DISPATCH_SHARE_CEILING:.0%})")

    # sanity: every point simulated the same tenant workload, so event
    # counts may differ per environment but must all be non-trivial
    assert all(p["events"] > 1_000 for p in sweep)
