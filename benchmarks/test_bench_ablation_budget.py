"""Ablation A2 — credit budget sweep."""

from repro.experiments import figures


def test_ablation_budget(run_report, scale):
    run_report(figures.ablation_budget_report, scale)
