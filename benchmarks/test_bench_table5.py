"""Table 5 — EDGI deployment task accounting."""

from repro.experiments import figures


def test_table5(run_report):
    run_report(figures.table5_report)
