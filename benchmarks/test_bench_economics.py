"""Economics sweep — credits vs slowdown under per-provider pricing.

Besides the human-readable report this bench emits
``benchmarks/results/BENCH_economics.json``, a machine-readable record
of the run (wall time, simulations actually run vs store hits, credits
spent per scenario) that CI uploads as an artifact — the seed of the
perf trajectory across commits.
"""

import json
import os
import time

import numpy as np

from repro.campaign.store import current_store
from repro.experiments import figures, run_campaign
from repro.experiments.report import results_dir


def test_economics(run_report, scale):
    store = current_store()
    hits0, misses0 = ((store.stats.hits, store.stats.misses)
                      if store is not None else (0, 0))
    wall0 = time.perf_counter()
    run_report(figures.economics_report)
    wall = time.perf_counter() - wall0

    # the report warmed the store, so this costs zero new simulations
    sweep = figures.economics_sweep(scale)
    cfgs = sweep.expand()
    results = run_campaign(cfgs)

    payload = {
        "bench": "economics",
        "scale": scale.name,
        "wall_seconds": round(wall, 3),
        "sims_run": (store.stats.misses - misses0)
        if store is not None else None,
        "store_hits": (store.stats.hits - hits0)
        if store is not None else None,
        "scenarios": [
            {
                "label": cfg.label(),
                "price_book": "heterogeneous" if cfg.pricing is not None
                else "uniform",
                "routing": cfg.routing,
                "seed": cfg.seed,
                "credits_spent": res.pool_spent,
                "pool_used_pct": res.pool_used_pct,
                "mean_slowdown": float(np.mean(res.slowdowns)),
                "censored": res.censored_count,
                "credits_by_provider": res.credits_by_provider(),
            }
            for cfg, res in zip(cfgs, results)
        ],
    }
    path = os.path.join(results_dir(), "BENCH_economics.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"\n[bench json saved to {path}]")

    # the ISSUE acceptance criterion, answered from the warm store: on
    # the reference heterogeneous federation cheapest_drain spends
    # measurably fewer credits than least_loaded
    spend = {}
    for cfg, res in zip(cfgs, results):
        if cfg.pricing is not None:
            spend.setdefault(cfg.routing, []).append(res.pool_spent)
    assert float(np.mean(spend["cheapest_drain"])) < \
        float(np.mean(spend["least_loaded"]))
