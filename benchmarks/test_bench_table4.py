"""Table 4 — prediction success rates."""

from repro.experiments import figures


def test_table4(run_report, scale):
    run_report(figures.table4_report, scale)
