"""Figure 4 — Tail Removal Efficiency CCDFs (18 combos)."""

from repro.experiments import figures


def test_figure4(run_report, scale):
    run_report(figures.figure4_report, scale)
