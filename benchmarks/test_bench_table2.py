"""Table 2 — BE-DCI trace statistics (synthesis targets vs measured)."""

from repro.experiments import figures


def test_table2(run_report):
    run_report(figures.table2_report)
