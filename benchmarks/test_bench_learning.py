"""Learning report — warm-vs-cold prediction over the history plane."""

from repro.experiments import figures


def test_learning(run_report, scale):
    run_report(figures.learning_report)
    # the ISSUE acceptance criterion, answered from the store the
    # report just warmed: prediction success with a warm persistent
    # archive strictly exceeds the cold-start rate on the reference
    # scenario, and the growing archive already improves on cold
    cold, growing, warm = figures.learning_rates(scale)
    assert warm > cold
    assert growing >= cold
