"""Table 3 — BoT workload characteristics."""

from repro.experiments import figures


def test_table3(run_report):
    run_report(figures.table3_report)
