"""Figure 2 — tail slowdown CDF (BOINC vs XWHEP)."""

from repro.experiments import figures


def test_figure2(run_report, scale):
    run_report(figures.figure2_report, scale)
