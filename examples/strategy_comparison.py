#!/usr/bin/env python
"""Compare all 18 Cloud-provisioning strategy combinations (§3.5).

The paper evaluates a 3x2x3 strategy grid: *when* to start Cloud
workers (90 % completed / 90 % assigned / execution-variance jump),
*how many* (greedy vs conservative) and *how to use them* (flat /
reschedule / cloud duplication).  This example runs all 18 on one
volatile environment against a paired no-SpeQuloS baseline and ranks
them by Tail Removal Efficiency and credit consumption — the axes of
the paper's Figures 4 and 5.

Run:  python examples/strategy_comparison.py [trace] [middleware]
"""

import sys

from repro.analysis.metrics import tail_removal_efficiency
from repro.core.strategies import ALL_COMBOS
from repro.experiments import ExecutionConfig, run_campaign, run_execution


def main(trace: str = "seti", middleware: str = "boinc") -> None:
    seeds = (101, 102)
    print(f"environment: {trace}/{middleware}, SMALL BoT x {len(seeds)} "
          "seeds (scaled to 250 tasks)\n")

    bases = {}
    for seed in seeds:
        cfg = ExecutionConfig(trace=trace, middleware=middleware,
                              category="SMALL", seed=seed, bot_size=250)
        bases[seed] = run_execution(cfg)
        b = bases[seed]
        print(f"baseline seed {seed}: makespan {b.makespan:8.0f} s, "
              f"ideal {b.ideal_time:8.0f} s, slowdown {b.slowdown:5.2f}x")

    rows = []
    for combo in ALL_COMBOS:
        cfgs = [bases[s].config.with_strategy(combo.name) for s in seeds]
        results = run_campaign(cfgs, n_jobs=1)
        tres, spends = [], []
        for seed, res in zip(seeds, results):
            base = bases[seed]
            if base.makespan - base.ideal_time > 120.0:
                tres.append(tail_removal_efficiency(
                    base.makespan, res.makespan, base.ideal_time))
            spends.append(res.credits_used_pct)
        tre = sum(tres) / len(tres) if tres else float("nan")
        spend = sum(spends) / len(spends)
        rows.append((combo.name, tre, spend))

    rows.sort(key=lambda r: -(r[1] if r[1] == r[1] else -1))
    print(f"\n{'combo':10s} {'TRE %':>8s} {'credits %':>10s}")
    print("-" * 32)
    for name, tre, spend in rows:
        print(f"{name:10s} {tre:8.1f} {spend:10.1f}")

    print("\npaper's findings to compare against (§4.2):")
    print(" * Reschedule / Cloud-duplication dominate Flat;")
    print(" * Execution-Variance (D-*) triggers too late;")
    print(" * Assignment threshold (9A) spends more than 9C;")
    print(" * the recommended compromise is 9C-C-R.")


if __name__ == "__main__":
    main(*sys.argv[1:3])
