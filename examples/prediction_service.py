#!/usr/bin/env python
"""Completion-time prediction as a service (§3.4, Table 4).

SpeQuloS predicts a BoT's completion as ``tp = alpha * tc(r) / r`` —
the current progress extrapolated linearly, corrected by a per-
environment factor ``alpha`` fitted on archived executions.  This
example builds a history by running several BoTs in one environment
(persisted through the SQLite archive backend, as a real multi-user
service would), then scores +-20 % prediction accuracy on fresh
executions — the paper's Table 4 protocol.

Run:  python examples/prediction_service.py
"""


from repro.core.info import InformationModule
from repro.core.oracle import fit_alpha, prediction_success
from repro.core.storage import ExecutionRecord, SQLiteHistoryStore
from repro.experiments import ExecutionConfig, run_campaign

ENV = ("nd", "xwhep", "SMALL")
PREDICT_AT = 0.5


def main() -> None:
    trace, mw, cat = ENV
    env_key = f"{trace}-{mw}//{cat}"
    print(f"environment: {env_key}, predictions at "
          f"{PREDICT_AT:.0%} completion\n")

    # 1. Build a history archive from 8 training executions.
    store = SQLiteHistoryStore(":memory:")
    info = InformationModule(store=store)
    train_cfgs = [ExecutionConfig(trace=trace, middleware=mw, category=cat,
                                  seed=500 + i, bot_size=200,
                                  strategy="9C-C-R")
                  for i in range(8)]
    print("running 8 training executions...")
    for res in run_campaign(train_cfgs):
        store.add(ExecutionRecord(env_key=env_key, n_tasks=res.n_tasks,
                                  makespan=res.makespan, grid=res.tc_grid))
    print(f"archive now holds {len(store)} executions "
          f"({store.env_keys()})\n")

    # 2. Fit alpha exactly as the Oracle does.
    idx = int(round(PREDICT_AT * 100)) - 1
    history = store.fetch(env_key)
    bases = [rec.grid[idx] / PREDICT_AT for rec in history]
    actuals = [rec.makespan for rec in history]
    alpha = fit_alpha(bases, actuals)
    print(f"fitted alpha = {alpha:.3f} "
          "(1.0 would mean linear extrapolation is already unbiased)")

    # 3. Score fresh executions.
    # Predictions are made for QoS-enabled BoTs: SpeQuloS both needs
    # them (to advise the user) and helps them succeed (tail removal
    # stabilizes completion times, §4.3.2-4.3.3).
    test_cfgs = [ExecutionConfig(trace=trace, middleware=mw, category=cat,
                                 seed=900 + i, bot_size=200,
                                 strategy="9C-C-R")
                 for i in range(6)]
    print("\nscoring 6 fresh executions:")
    hits = 0
    for res in run_campaign(test_cfgs):
        base = res.tc_grid[idx] / PREDICT_AT
        tp = alpha * base
        ok = prediction_success(tp, res.makespan)
        hits += ok
        print(f"  seed {res.config.seed}: predicted {tp:8.0f} s, "
              f"actual {res.makespan:8.0f} s  "
              f"{'HIT' if ok else 'miss'}")
    print(f"\nsuccess rate: {hits}/{len(test_cfgs)} "
          f"({100 * hits / len(test_cfgs):.0f} %) — the paper reports "
          "~90 % on average across environments (Table 4)")


if __name__ == "__main__":
    main()
