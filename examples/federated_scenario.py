#!/usr/bin/env python
"""One SpeQuloS over many DCIs and clouds (§5, Figure 8).

The paper's headline deployment runs a single SpeQuloS instance over
several best-effort DCIs, each backed by its own cloud.  This example
builds that situation declaratively: a heterogeneous two-DCI
federation — a huge volatile BOINC desktop grid next to a 10-node
XtremWeb lab grid — serving eight tenants' BoTs from one credit pool
under one global cloud-worker budget, and compares blind round-robin
routing against live-load routing.

Run:  python examples/federated_scenario.py
"""

from repro.experiments import DCISpec, ScenarioConfig, run_federated


def scenario(routing: str) -> ScenarioConfig:
    return ScenarioConfig(
        dcis=(DCISpec(trace="seti", middleware="boinc"),
              DCISpec(trace="nd", middleware="xwhep", max_nodes=10)),
        seed=6001, n_tenants=8, bot_size=100, strategy="9C-C-R",
        routing=routing, policy="fairshare",
        max_total_workers=8, pool_fraction=0.02,
        arrival_rate_per_hour=2.0, deadline_factor=0.5,
        horizon_days=2.0)


def main() -> None:
    print("federating a huge desktop grid (seti/boinc) with a 10-node "
          "lab grid (nd/xwhep)\nunder one SpeQuloS, one credit pool and "
          "an 8-worker cloud budget...\n")
    for routing in ("round_robin", "least_loaded"):
        res = run_federated(scenario(routing))
        split = " + ".join(f"{d.tenants_assigned} on {d.name}"
                           for d in res.dcis)
        print(f"{routing:>12s}: tenants {split}")
        print(f"{'':>12s}  max/min slowdown spread "
              f"{res.slowdown_spread:.2f}, jain {res.fairness:.3f}, "
              f"pool spent {res.pool_used_pct:.0f} %, "
              f"peak cloud workers {res.workers_peak}")
    print("\nlive-load routing diverts BoTs off the saturated 10-node "
          "grid, so the\nworst-served tenant fares closer to the "
          "best-served one — the cross-DCI\narbitration the EDGI "
          "deployment implies but the paper never measures.")


if __name__ == "__main__":
    main()
