#!/usr/bin/env python
"""Bring your own availability trace.

The paper replays datasets from the Failure Trace Archive; this
reproduction synthesizes equivalents, but the whole pipeline also runs
on *measured* traces.  This example shows the workflow end to end:

1. write a trace in the FTA-style interval format (here we fabricate a
   tiny institutional desktop grid: 9-to-5 weekday availability with
   per-node jitter — the classic enterprise-DG pattern of Kondo et
   al.);
2. load it with :func:`repro.infra.fta.load_trace`;
3. run a BoT through XtremWeb-HEP on it, with and without SpeQuloS.

Any monitoring system that can dump `(node, start, end)` rows can feed
this path.

Run:  python examples/custom_trace.py
"""

import io

import numpy as np

from repro.core.service import SpeQuloS
from repro.cloud.registry import get_driver
from repro.infra.fta import load_trace, save_trace
from repro.infra.pool import NodePool
from repro.infra.stats import measure_trace
from repro.middleware.xwhep import XWHepServer
from repro.simulator.engine import Simulation
from repro.workload.bot import BagOfTasks, Task

DAY = 86400.0
HOUR = 3600.0


def fabricate_office_trace(n_nodes=40, n_days=5, seed=1) -> str:
    """A 9-to-5 enterprise desktop grid, as an FTA-format string."""
    rng = np.random.default_rng(seed)
    buf = io.StringIO()
    buf.write("# fabricated office desktop grid: 9-17h weekdays\n")
    for node in range(n_nodes):
        power = max(300.0, rng.normal(1000.0, 250.0))
        for day in range(n_days):
            # workstation switched on around 9, off around 17, with a
            # lunch-break suspension on some days
            on = day * DAY + 9 * HOUR + rng.normal(0, 900)
            off = day * DAY + 17 * HOUR + rng.normal(0, 1800)
            if rng.random() < 0.4:   # lunch reboot
                lunch = day * DAY + 12.5 * HOUR + rng.normal(0, 600)
                buf.write(f"{node} {on:.0f} {lunch:.0f} {power:.0f}\n")
                buf.write(f"{node} {lunch + 1800:.0f} {off:.0f} "
                          f"{power:.0f}\n")
            else:
                buf.write(f"{node} {on:.0f} {off:.0f} {power:.0f}\n")
    return buf.getvalue()


def main() -> None:
    text = fabricate_office_trace()
    nodes = load_trace(io.StringIO(text))
    stats = measure_trace(nodes, 5 * DAY, step=600.0)
    print(f"loaded {len(nodes)} nodes from the FTA-format trace")
    print(f"  mean available nodes : {stats.mean_nodes:.1f}")
    print(f"  availability medians : {stats.avail_quartiles[1]:.0f} s")
    print(f"  node power           : {stats.power_mean:.0f} ± "
          f"{stats.power_std:.0f} nops/s")

    def run(with_speq: bool) -> tuple:
        sim = Simulation(horizon=30 * DAY)
        pool = NodePool(load_trace(io.StringIO(text)),
                        rng=np.random.default_rng(7))
        srv = XWHepServer(sim, pool)
        # 150 one-hour tasks submitted Monday 10:00
        bot = BagOfTasks(
            bot_id="office-bot",
            tasks=[Task(i, 3_600_000.0) for i in range(150)],
            wall_clock=11_000.0)
        spent = 0.0
        if with_speq:
            speq = SpeQuloS(sim)
            speq.connect_dci("office", srv,
                             get_driver("opennebula", sim,
                                        np.random.default_rng(8)))
            speq.register_qos(bot, "office",
                              submit_time=9.5 * HOUR + HOUR / 2)
            provision = 0.10 * bot.workload_cpu_hours * 15.0
            speq.credits.deposit("it-dept", provision)
            speq.order_qos("office-bot", "it-dept", provision)
        done = {}

        class Obs:
            def on_bot_completed(self, bid, t):
                done["t"] = t
                sim.stop()

        srv.add_observer(Obs())
        srv.submit_bot(bot, at=10 * HOUR)
        sim.run()
        if with_speq:
            spent = speq.credits.spent("office-bot")
        return done.get("t"), spent

    plain, _ = run(False)
    speq_t, spent = run(True)
    print(f"\n150 x 1h-task BoT submitted Monday 10:00:")
    print(f"  without SpeQuloS : done after {(plain - 10 * HOUR) / HOUR:6.1f} h"
          f" (overnight gaps stall the tail)")
    print(f"  with SpeQuloS    : done after {(speq_t - 10 * HOUR) / HOUR:6.1f} h"
          f" (cloud bill: {spent:.0f} credits)")

    # the same trace can be persisted for reuse by other tools
    save_trace(nodes[:2], io.StringIO())  # (or a real path)
    print("\ntrace round-trips through repro.infra.fta for reuse.")


if __name__ == "__main__":
    main()
