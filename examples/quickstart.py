#!/usr/bin/env python
"""Quickstart: one BoT on a volatile desktop grid, with and without
SpeQuloS.

Reproduces the paper's core demonstration in one page: a SMALL-class
Bag-of-Tasks executed through the BOINC middleware model on the
SETI@home-like availability trace shows a long *tail* (the last few
tasks take a disproportionate share of the makespan); enabling SpeQuloS
with the recommended ``9C-C-R`` strategy removes most of it for a small
cloud bill.

Run:  python examples/quickstart.py
"""

from repro.analysis.metrics import tail_removal_efficiency
from repro.experiments import ExecutionConfig, run_execution


def main() -> None:
    base = ExecutionConfig(
        trace="seti",          # Table 2's volunteer-computing trace
        middleware="boinc",    # replication + quorum + 1-day deadline
        category="SMALL",      # 1000 long tasks (scaled down below)
        seed=2012,
        bot_size=250,          # laptop-friendly scale
    )

    print("running baseline (no SpeQuloS)...")
    plain = run_execution(base)
    print(f"  makespan          : {plain.makespan:10.0f} s")
    print(f"  ideal completion  : {plain.ideal_time:10.0f} s "
          "(tc(0.9)/0.9, paper §2.2)")
    print(f"  tail slowdown     : {plain.slowdown:10.2f} x")
    print(f"  tasks in tail     : {plain.pct_tasks_in_tail:10.1f} %")
    print(f"  time in tail      : {plain.pct_time_in_tail:10.1f} %")

    print("\nrunning the same execution with SpeQuloS (9C-C-R)...")
    speq = run_execution(base.with_strategy("9C-C-R"))
    print(f"  makespan          : {speq.makespan:10.0f} s")
    print(f"  cloud workers     : {speq.workers_launched:10d}")
    print(f"  credits spent     : {speq.credits_spent:10.1f} of "
          f"{speq.credits_provisioned:.1f} provisioned "
          f"({speq.credits_used_pct:.1f} %)")

    speedup = plain.makespan / speq.makespan
    tre = tail_removal_efficiency(plain.makespan, speq.makespan,
                                  plain.ideal_time)
    print(f"\nspeedup              : {speedup:10.2f} x")
    print(f"tail removal         : {tre:10.1f} %")
    print("\n(the paper reports speedups beyond 2x on volatile DCIs while"
          "\n offloading < 2.5 % of the workload to the cloud — §4.3)")


if __name__ == "__main__":
    main()
