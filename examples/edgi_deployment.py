#!/usr/bin/env python
"""The EDGI production deployment, in simulation (§5, Table 5).

Reproduces the paper's Figure 8 topology: two XtremWeb-HEP desktop
grids at University Paris-XI (XW@LAL over lab desktops, XW@LRI
harvesting Grid'5000 best-effort nodes), EGI grid users bridged onto
XW@LAL through the 3G-Bridge, and one SpeQuloS instance provisioning
QoS cloud workers from StratusLab (for LAL) and Amazon EC2 (for LRI).

A stream of RANDOM-class BoTs flows through the deployment; half of
them purchase QoS.  The output is Table 5's accounting: tasks executed
per infrastructure component.

Run:  python examples/edgi_deployment.py
"""

from repro.deployment.edgi import EDGIDeployment


def main() -> None:
    print("building the Paris-XI EDGI deployment "
          "(2 DGs + 3G-bridge + 2 clouds + SpeQuloS)...")
    dep = EDGIDeployment(seed=5)

    print("driving a 2-day BoT stream (12 RANDOM BoTs, 25% via EGI "
          "bridge, 50% with QoS)...\n")
    summary = dep.run(duration_days=2.0, n_bots=12)

    print(f"{'component':12s} {'#tasks':>8s}   role")
    print("-" * 60)
    roles = {
        "XW@LAL": "desktop grid (lab PCs), runs native + EGI BoTs",
        "XW@LRI": "Grid'5000 best-effort harvest (<= 200 nodes)",
        "EGI": "grid jobs bridged to XW@LAL via 3G-Bridge",
        "StratusLab": "QoS cloud workers for XW@LAL (SpeQuloS)",
        "EC2": "QoS cloud workers for XW@LRI (SpeQuloS)",
    }
    for name, count in summary.items():
        print(f"{name:12s} {count:8d}   {roles[name]}")

    dg = summary["XW@LAL"] + summary["XW@LRI"]
    cloud = summary["StratusLab"] + summary["EC2"]
    print(f"\ncloud share of all executed tasks: "
          f"{100.0 * cloud / (dg + cloud):.1f} % — the BE-DCIs carry the "
          "bulk, the clouds only the QoS-critical fraction, matching the "
          "paper's production numbers (Table 5: 686k DG tasks vs ~4k "
          "cloud tasks).")


if __name__ == "__main__":
    main()
