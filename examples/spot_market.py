#!/usr/bin/env python
"""Cloud spot instances as a Best-Effort DCI (§2.1, §4.1.1).

The paper's ``spot10`` / ``spot100`` traces come from a clever bidding
strategy on Amazon EC2 spot instances: to spend a constant S dollars
per hour, place persistent bids at prices S/i for i = 1..n.  Whenever
the market price is p, exactly floor(S/p) bids are above water, so the
fleet self-regulates — and a price spike terminates the *top of the
ladder at once*, which is what makes spot infrastructures fail in
correlated bursts rather than one desktop at a time.

This example synthesizes a 30-day market, builds the S=$10 ladder, and
then runs a SMALL BoT on the resulting BE-DCI with and without
SpeQuloS.

Run:  python examples/spot_market.py
"""

import numpy as np

from repro.experiments import ExecutionConfig, run_execution
from repro.infra.spot import SpotMarket, ladder_counts, spot_intervals
from repro.infra.stats import measure_trace
from repro.infra.catalog import get_trace_spec

DAY = 86400.0


def main() -> None:
    rng = np.random.default_rng(7)
    market = SpotMarket(rng, horizon=30 * DAY)
    print("synthetic c1.large spot market, 30 days:")
    print(f"  price range : {market.prices.min():.3f} .. "
          f"{market.prices.max():.3f} $/h (floor "
          f"{market.params.floor})")

    counts = ladder_counts(market, budget=10.0)
    print(f"\nbid ladder for S=$10/h (bids at 10/i):")
    print(f"  instances   : mean {counts.mean():.1f}, min {counts.min()}, "
          f"max {counts.max()}")
    print(f"  total cost  : <= $10/h by construction "
          f"(worst hour: ${(counts * market.prices).max():.2f})")
    drops = np.diff(counts)
    print(f"  biggest correlated termination: {-drops.min()} instances "
          "at once (price spike kills the ladder top)")

    # availability seen by individual ladder slots
    ivs = spot_intervals(market, 10.0)
    spans = [float(np.sum(e - s)) for s, e in ivs if len(s)]
    print(f"  slot uptime : most robust {spans[0] / DAY:.1f} days, most "
          f"fragile {spans[-1] / DAY:.1f} days of 30")

    # Table 2 style statistics of the materialized trace
    spec = get_trace_spec("spot10")
    nodes = spec.materialize(np.random.default_rng(8), 4 * DAY)
    st = measure_trace(nodes, 4 * DAY)
    print(f"\nspot10 trace vs paper targets: mean {st.mean_nodes:.0f} "
          f"(target {spec.mean_nodes:.0f}), max {st.max_nodes} "
          f"(target {spec.max_nodes})")

    print("\nrunning a SMALL BoT on the spot BE-DCI (XWHEP)...")
    base = ExecutionConfig(trace="spot10", middleware="xwhep",
                           category="SMALL", seed=42, bot_size=250)
    plain = run_execution(base)
    speq = run_execution(base.with_strategy("9C-C-R"))
    print(f"  no SpeQuloS : {plain.makespan:8.0f} s "
          f"(slowdown {plain.slowdown:.2f}x)")
    print(f"  SpeQuloS    : {speq.makespan:8.0f} s "
          f"(credits spent {speq.credits_used_pct:.1f} %)")
    print("\nspot fleets are comparatively stable between spikes, so the "
          "paper finds the smallest SpeQuloS gains here (Figure 6).")


if __name__ == "__main__":
    main()
